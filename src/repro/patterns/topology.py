"""Session-spec builders for the common collaboration shapes.

Each builder returns a :class:`~repro.session.SessionSpec` with a
conventional port naming scheme, so pattern runtimes (coordinator,
pipeline) and applications agree on names:

* star: hub has inbox ``in`` and outbox per spoke (``to:<spoke>``) plus
  broadcast outbox ``bcast``; every spoke has inbox ``in`` and outbox
  ``out`` to the hub.
* ring: every member has inbox ``in`` and outbox ``next`` (clockwise);
  bidirectional rings add inbox/outbox pairs for the other direction.
* mesh: every member has inbox ``in`` and a broadcast outbox ``bcast``
  bound to all the others, plus per-peer outboxes ``to:<peer>``.
* chain: stage *i* has inbox ``in`` and outbox ``out`` to stage *i+1*.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.session.spec import SessionSpec


def star_spec(app: str, hub: str, spokes: Iterable[str],
              params: dict | None = None,
              regions: Mapping[str, dict[str, str]] | None = None,
              ) -> SessionSpec:
    """Figure 1's shape: one coordinator, many members."""
    spokes = list(spokes)
    regions = dict(regions or {})
    spec = SessionSpec(app, params=params)
    spec.add_member(hub, inboxes=("in",), regions=regions.get(hub, {}))
    for spoke in spokes:
        spec.add_member(spoke, inboxes=("in",),
                        regions=regions.get(spoke, {}))
        spec.bind(hub, f"to:{spoke}", spoke, "in")
        spec.bind(hub, "bcast", spoke, "in")
        spec.bind(spoke, "out", hub, "in")
    return spec


def ring_spec(app: str, members: Iterable[str],
              params: dict | None = None, *,
              bidirectional: bool = False) -> SessionSpec:
    """A cycle: each member talks to its successor (and predecessor,
    if bidirectional) — the card-game shape."""
    members = list(members)
    if len(members) < 2:
        raise ValueError("a ring needs at least two members")
    spec = SessionSpec(app, params=params)
    for member in members:
        spec.add_member(member, inboxes=("in",))
    n = len(members)
    for i, member in enumerate(members):
        spec.bind(member, "next", members[(i + 1) % n], "in")
        if bidirectional:
            spec.bind(member, "prev", members[(i - 1) % n], "in")
    return spec


def mesh_spec(app: str, members: Iterable[str],
              params: dict | None = None,
              regions: Mapping[str, dict[str, str]] | None = None,
              ) -> SessionSpec:
    """Fully connected: everyone can broadcast to everyone."""
    members = list(members)
    if len(members) < 2:
        raise ValueError("a mesh needs at least two members")
    regions = dict(regions or {})
    spec = SessionSpec(app, params=params)
    for member in members:
        spec.add_member(member, inboxes=("in",),
                        regions=regions.get(member, {}))
    for member in members:
        for other in members:
            if other != member:
                spec.bind(member, "bcast", other, "in")
                spec.bind(member, f"to:{other}", other, "in")
    return spec


def chain_spec(app: str, stages: Iterable[str],
               params: dict | None = None) -> SessionSpec:
    """A pipeline: stage i feeds stage i+1."""
    stages = list(stages)
    if len(stages) < 2:
        raise ValueError("a chain needs at least two stages")
    spec = SessionSpec(app, params=params)
    for stage in stages:
        spec.add_member(stage, inboxes=("in",))
    for src, dst in zip(stages, stages[1:]):
        spec.bind(src, "out", dst, "in")
    return spec
