"""Pluggable storage backends and deterministic crash injection.

A :class:`StorageBackend` is a flat namespace of named byte streams with
exactly the operations a WAL needs:

* ``append(key, data)`` — extend a stream (the journal hot path),
* ``write(key, data)`` — replace a stream *atomically* (snapshots),
* ``read(key)`` / ``keys(prefix)`` / ``delete(key)``,
* ``sync(key)`` — make appended bytes durable; returns seconds spent.

:class:`MemoryBackend` keeps streams in dicts (the simulator's default:
deterministic, instant, survives a *dapplet* restart because the world
holds it). :class:`FileBackend` maps streams to files in one directory,
appends through cached handles, fsyncs for real, and replaces via
``os.replace`` so ``write`` is atomic on POSIX.

Crash injection
---------------

Both backends inherit :class:`CrashInjectableBackend`: installing a
:class:`CrashPoint` arms a byte/record budget. The append that would
cross the byte budget durably applies only the prefix that fits — a
*torn write*, exactly what a dying host leaves on disk — then raises
:class:`~repro.errors.BackendCrash`; an atomic ``write`` either fits
entirely or applies nothing (rename semantics). After the crash fires
the backend plays dead (every call raises) until ``reset_crash()``,
which models restarting the process against the surviving bytes. The
budget is deterministic, so a test can re-run one workload with the
crash point at every interesting offset and assert recovery at each.
"""

from __future__ import annotations

import os
import pathlib
import time
import urllib.parse
from typing import Protocol, runtime_checkable

from repro.errors import BackendCrash, StoreError


@runtime_checkable
class StorageBackend(Protocol):
    """The minimal contract :class:`repro.store.DurableState` needs."""

    def append(self, key: str, data: bytes) -> None: ...

    def write(self, key: str, data: bytes) -> None: ...

    def read(self, key: str) -> bytes: ...

    def delete(self, key: str) -> None: ...

    def keys(self, prefix: str = "") -> list[str]: ...

    def sync(self, key: str) -> float: ...


class CrashPoint:
    """A deterministic kill switch for backend writes.

    Parameters
    ----------
    after_bytes:
        Crash once this many bytes (cumulative across all streams,
        counted from when the point was installed) have been durably
        applied; the append crossing the threshold is torn at it.
    after_appends:
        Let this many ``append`` calls complete, then crash the next
        one *before* it applies anything (a clean record-boundary kill).

    Either or both may be set; whichever trips first fires.
    """

    def __init__(self, after_bytes: int | None = None,
                 after_appends: int | None = None) -> None:
        if after_bytes is None and after_appends is None:
            raise StoreError("CrashPoint needs after_bytes or after_appends")
        if (after_bytes is not None and after_bytes < 0) or \
                (after_appends is not None and after_appends < 0):
            raise StoreError("crash budgets must be >= 0")
        self.after_bytes = after_bytes
        self.after_appends = after_appends

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CrashPoint bytes={self.after_bytes} "
                f"appends={self.after_appends}>")


class CrashInjectableBackend:
    """Budget accounting + dead-after-crash behaviour, shared by backends."""

    def __init__(self) -> None:
        self._crash_point: CrashPoint | None = None
        self.crashed = False
        #: Bytes durably applied since the crash point was installed.
        self._budget_bytes = 0
        self._budget_appends = 0
        #: Totals over the backend's whole life (for stats/benchmarks).
        self.bytes_written = 0
        self.append_calls = 0
        self.sync_calls = 0

    # -- crash-point management -------------------------------------------

    def install_crash_point(self, point: CrashPoint) -> None:
        """Arm ``point``; budgets count from this call."""
        self._crash_point = point
        self._budget_bytes = 0
        self._budget_appends = 0

    def reset_crash(self) -> None:
        """Un-kill the backend (the host restarted; bytes survived)."""
        self.crashed = False
        self._crash_point = None

    # -- guards used by subclasses ----------------------------------------

    def _check_alive(self) -> None:
        if self.crashed:
            raise BackendCrash("backend is crashed (reset_crash() to "
                               "restart it)", at_byte=self.bytes_written)

    def _die(self) -> None:
        self.crashed = True
        raise BackendCrash(
            f"injected crash after {self.bytes_written} durable bytes",
            at_byte=self.bytes_written)

    def _guard_append(self, size: int) -> int:
        """How many of ``size`` bytes this append may apply.

        Returns ``size`` when no budget trips. When a budget trips the
        caller must durably apply exactly the returned prefix and then
        call :meth:`_account` + :meth:`_die` — see :meth:`_apply_append`
        for the canonical sequence.
        """
        self._check_alive()
        point = self._crash_point
        if point is None:
            return size
        if point.after_appends is not None \
                and self._budget_appends >= point.after_appends:
            return -1  # crash before applying anything
        if point.after_bytes is not None:
            room = point.after_bytes - self._budget_bytes
            if room < size:
                return max(room, 0)
        return size

    def _guard_write(self, size: int) -> bool:
        """Whether an atomic replace of ``size`` bytes goes through.

        Atomicity means a crashing ``write`` applies *nothing* (the
        rename never happened); returns False to signal the caller to
        skip the replace and then :meth:`_die`.
        """
        self._check_alive()
        point = self._crash_point
        if point is None:
            return True
        if point.after_bytes is not None \
                and point.after_bytes - self._budget_bytes < size:
            return False
        return True

    def _account(self, nbytes: int, *, append: bool = False) -> None:
        self.bytes_written += nbytes
        self._budget_bytes += nbytes
        if append:
            self.append_calls += 1
            self._budget_appends += 1


class MemoryBackend(CrashInjectableBackend):
    """Streams held in process memory.

    The default on the simulated substrate: byte-deterministic, no I/O,
    and — because the :class:`~repro.world.World` owns it — it survives
    any individual dapplet's crash/restart, which is the failure model
    the crash tests exercise. ``sync`` is free and returns exactly 0.0,
    and ``wall_timed`` is False, so traced fsync/replay durations stay
    deterministic.
    """

    #: Durations reported for this backend are wall-clock measurements.
    wall_timed = False

    def __init__(self) -> None:
        super().__init__()
        self._streams: dict[str, bytearray] = {}

    def append(self, key: str, data: bytes) -> None:
        allowed = self._guard_append(len(data))
        if allowed < 0:
            self._die()
        stream = self._streams.setdefault(key, bytearray())
        stream += data[:allowed]
        self._account(allowed, append=True)
        if allowed < len(data):
            self._die()

    def write(self, key: str, data: bytes) -> None:
        if not self._guard_write(len(data)):
            self._die()
        self._streams[key] = bytearray(data)
        self._account(len(data))

    def read(self, key: str) -> bytes:
        self._check_alive()
        return bytes(self._streams.get(key, b""))

    def delete(self, key: str) -> None:
        self._check_alive()
        self._streams.pop(key, None)

    def keys(self, prefix: str = "") -> list[str]:
        self._check_alive()
        return sorted(k for k in self._streams if k.startswith(prefix))

    def sync(self, key: str) -> float:
        self._check_alive()
        self.sync_calls += 1
        return 0.0

    def clone(self) -> "MemoryBackend":
        """An independent copy of the current bytes (for crash replays)."""
        copy = MemoryBackend()
        copy._streams = {k: bytearray(v) for k, v in self._streams.items()}
        return copy


class FileBackend(CrashInjectableBackend):
    """Streams as files under one directory.

    Keys are percent-encoded into flat file names (keys contain ``/``
    and ``@``). Appends go through cached ``ab`` handles so ``sync`` can
    ``os.fsync`` the same descriptor; ``write`` goes to a temp file,
    fsyncs it, and ``os.replace``s it into place — atomic on POSIX.
    """

    wall_timed = True

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        super().__init__()
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._handles: dict[str, "object"] = {}

    def _path(self, key: str) -> pathlib.Path:
        return self.root / urllib.parse.quote(key, safe="")

    def _handle(self, key: str):
        handle = self._handles.get(key)
        if handle is None or handle.closed:
            handle = self._handles[key] = open(self._path(key), "ab")
        return handle

    def append(self, key: str, data: bytes) -> None:
        allowed = self._guard_append(len(data))
        if allowed < 0:
            self._die()
        handle = self._handle(key)
        handle.write(data[:allowed])
        handle.flush()
        self._account(allowed, append=True)
        if allowed < len(data):
            self._die()

    def write(self, key: str, data: bytes) -> None:
        if not self._guard_write(len(data)):
            self._die()
        self._drop_handle(key)
        tmp = self._path(key).with_name(self._path(key).name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._path(key))
        self._account(len(data))

    def read(self, key: str) -> bytes:
        self._check_alive()
        handle = self._handles.get(key)
        if handle is not None and not handle.closed:
            handle.flush()
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            return b""

    def delete(self, key: str) -> None:
        self._check_alive()
        self._drop_handle(key)
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            pass

    def keys(self, prefix: str = "") -> list[str]:
        self._check_alive()
        names = (urllib.parse.unquote(p.name) for p in self.root.iterdir()
                 if p.is_file() and not p.name.endswith(".tmp"))
        return sorted(k for k in names if k.startswith(prefix))

    def sync(self, key: str) -> float:
        self._check_alive()
        self.sync_calls += 1
        handle = self._handles.get(key)
        if handle is None or handle.closed:
            # Atomically-written keys are fsynced at replace time; there
            # is nothing left to make durable.
            return 0.0
        start = time.perf_counter()
        handle.flush()
        os.fsync(handle.fileno())
        return time.perf_counter() - start

    def _drop_handle(self, key: str) -> None:
        handle = self._handles.pop(key, None)
        if handle is not None and not handle.closed:
            handle.close()

    def close(self) -> None:
        """Close every cached append handle."""
        for key in list(self._handles):
            self._drop_handle(key)
