"""Write-ahead-log record framing: length-prefixed, checksummed.

Every durable byte stream in :mod:`repro.store` — the per-dapplet WAL,
snapshot objects, checkpoint channel logs — is a concatenation of
*records*::

    +----------------+----------------+===============+
    | u32 length (N) | u32 crc32      | N payload ... |
    +----------------+----------------+===============+

both integers big-endian, the CRC taken over the payload only. The
framing makes recovery *torn-tail tolerant*: a crash may leave the last
record half-written (a truncated header, a truncated payload, or a
payload whose CRC no longer matches), and :func:`iter_records` simply
stops at the first such record — the valid prefix IS the durable state.

Payloads are opaque here; :mod:`repro.store.durable` puts canonical JSON
in them so identical mutation sequences produce byte-identical logs.
"""

from __future__ import annotations

import struct

from repro.errors import StoreError

#: Record header: payload length, then crc32 of the payload.
HEADER = struct.Struct("!II")
HEADER_BYTES = HEADER.size

try:
    from zlib import crc32
except ImportError:  # pragma: no cover - zlib is effectively always there
    from binascii import crc32


def frame(payload: bytes) -> bytes:
    """``payload`` wrapped in one WAL record."""
    if not payload:
        raise StoreError("empty WAL payloads are not framable: a torn "
                         "tail of NUL bytes would masquerade as one")
    return HEADER.pack(len(payload), crc32(payload)) + payload


def iter_records(data: bytes) -> tuple[list[bytes], int, bool]:
    """Parse ``data`` into ``(payloads, consumed, torn)``.

    ``payloads`` are the payloads of the valid record prefix;
    ``consumed`` is how many bytes that prefix spans; ``torn`` is True
    when trailing bytes remain that do not form a complete, checksummed
    record (the signature a crash leaves behind). Parsing never raises:
    any malformed tail simply ends the prefix.
    """
    payloads: list[bytes] = []
    offset = 0
    total = len(data)
    while total - offset >= HEADER_BYTES:
        length, crc = HEADER.unpack_from(data, offset)
        start = offset + HEADER_BYTES
        if length == 0 or total - start < length:
            break  # torn header or truncated payload
        payload = bytes(data[start:start + length])
        if crc32(payload) != crc:
            break  # payload bytes damaged mid-record
        payloads.append(payload)
        offset = start + length
    return payloads, offset, offset != total


def single_record(data: bytes, *, what: str = "object") -> bytes:
    """The payload of a stream that must hold exactly one valid record.

    Used for snapshot objects, which are written atomically: anything
    other than one clean record means real corruption (not a torn
    tail), so this raises :class:`~repro.errors.StoreError`.
    """
    payloads, _, torn = iter_records(data)
    if torn or len(payloads) != 1:
        raise StoreError(
            f"corrupt {what}: expected exactly one checksummed record, "
            f"got {len(payloads)} (torn={torn}, {len(data)} bytes)")
    return payloads[0]


def interesting_offsets(data: bytes, *, per_record: bool = True) -> list[int]:
    """Crash offsets worth injecting for a log with these bytes.

    For every record boundary the list includes: the boundary itself, a
    cut inside the length prefix, a cut inside the CRC, the cut right
    after the header, and a cut mid-payload — every distinct way a crash
    can tear that record. The full length is included too (crash after
    the final byte). Offsets are sorted and unique.
    """
    offsets = {0, len(data)}
    boundary = 0
    total = len(data)
    while total - boundary >= HEADER_BYTES:
        length, _ = HEADER.unpack_from(data, boundary)
        if length == 0 or total - boundary - HEADER_BYTES < length:
            break
        if per_record:
            offsets.add(boundary)                      # clean cut before
            offsets.add(boundary + 2)                  # inside the length
            offsets.add(boundary + HEADER_BYTES - 2)   # inside the crc
            offsets.add(boundary + HEADER_BYTES)       # header, no payload
            offsets.add(boundary + HEADER_BYTES + length // 2)  # mid-payload
        boundary += HEADER_BYTES + length
    offsets.add(boundary)
    return sorted(offsets)
