"""Durable dapplet state: WAL + snapshot persistence.

The paper (§2.2) requires dapplet state that "must persist across
multiple temporary sessions"; this package supplies the durability
layer beneath :class:`~repro.dapplet.state.PersistentState`:

* :mod:`repro.store.wal` — length-prefixed, crc32-checksummed record
  framing with torn-tail-tolerant parsing,
* :class:`StorageBackend` — the pluggable byte-stream contract, with
  :class:`MemoryBackend` (deterministic, in-process) and
  :class:`FileBackend` (real files, real fsync) implementations,
* :class:`DurableState` — journals every region mutation, folds the
  log into snapshots, and recovers ``snapshot + valid WAL prefix``,
* :class:`CrashPoint` — deterministic crash injection (kill writes
  after N bytes or N records) so recovery is *tested* at every
  interesting boundary, not assumed.

See ``docs/PERSISTENCE.md`` for formats, invariants, and the crash
harness; ``World(store=...)`` and ``World.restart_dapplet`` wire it
into the dapplet stack.
"""

from repro.errors import BackendCrash, StoreError
from repro.store.backend import (
    CrashPoint,
    FileBackend,
    MemoryBackend,
    StorageBackend,
)
from repro.store.durable import (
    FSYNC_ALWAYS,
    FSYNC_FOLD,
    FSYNC_NEVER,
    DurableState,
)
from repro.store.wal import frame, interesting_offsets, iter_records

__all__ = [
    "BackendCrash",
    "CrashPoint",
    "DurableState",
    "FSYNC_ALWAYS",
    "FSYNC_FOLD",
    "FSYNC_NEVER",
    "FileBackend",
    "MemoryBackend",
    "StorageBackend",
    "StoreError",
    "frame",
    "interesting_offsets",
    "iter_records",
]
