"""``DurableState``: a journaled, snapshotting layer over a backend.

The shape is the classic persistable-object design: every mutation is
appended to a write-ahead log *before* it is applied in memory, and the
log is periodically folded into a snapshot so recovery stays O(recent
mutations), not O(history)::

    recover() = snapshot + valid WAL prefix

Each journal record carries a monotone sequence number; a snapshot
records the sequence it folded up to, so recovery replays exactly the
records newer than the snapshot — a crash *between* writing the
snapshot and truncating the WAL is therefore harmless (the stale
records are skipped by sequence, not re-applied).

One ``DurableState`` owns a key namespace inside its backend::

    <name>.wal          the journal (WAL records, appended)
    <name>.snap         the latest snapshot (one record, replaced atomically)
    <name>.<key>        named objects (checkpoint cuts; one record each)
    <name>.<key>        named logs (checkpoint channel messages; appended)

Values are encoded with the message codec's value encoder
(:func:`repro.messages.serialize.encode_value`), so everything that can
cross the wire can also be replayed from disk — and anything that
cannot fails typed *before* any byte is written or any in-memory state
changes.

Trace events (category ``store``) cover appends, fsyncs, folds and
recoveries; ``fsync``/``replay`` duration fields feed the
``store.fsync``/``store.replay`` histograms (wall-clock on file
backends; exactly 0.0 on :class:`~repro.store.MemoryBackend`, keeping
simulated traces deterministic).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

from repro.errors import StoreError
from repro.messages.serialize import decode_value, encode_value
from repro.store import wal
from repro.store.backend import StorageBackend

#: ``fsync`` policies: after every append / only when folding / never.
FSYNC_ALWAYS = "always"
FSYNC_FOLD = "fold"
FSYNC_NEVER = "never"
_FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_FOLD, FSYNC_NEVER)

StateDict = dict[str, dict[str, Any]]


def _canonical(payload: Any) -> bytes:
    """Canonical JSON bytes: the journal is a deterministic function of
    the mutation sequence, which the crash-matrix tests rely on."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class DurableState:
    """Journals region mutations; folds them into snapshots; recovers.

    Parameters
    ----------
    backend:
        Where the bytes live (:class:`~repro.store.MemoryBackend`,
        :class:`~repro.store.FileBackend`, or anything satisfying
        :class:`~repro.store.StorageBackend`).
    name:
        This state's key namespace inside the backend (dapplets use
        ``dapplet/<name>``).
    snapshot_every:
        Fold the WAL into a snapshot automatically after this many
        journaled records (``0`` disables auto-folding). Folding needs
        ``state_fn``.
    state_fn:
        Zero-argument callable returning the full current state as
        ``{region: {key: value}}``; :class:`~repro.dapplet.state
        .PersistentState` wires its own ``snapshot`` here on attach.
    fsync:
        ``"always"`` (default) syncs the WAL after every append,
        ``"fold"`` only when folding/saving objects, ``"never"`` leaves
        durability to the backend.
    substrate:
        Optional substrate whose ``tracer`` receives ``store`` events;
        ``node`` labels them (the owning dapplet's address).
    """

    def __init__(self, backend: StorageBackend, *, name: str = "state",
                 snapshot_every: int = 256,
                 state_fn: Callable[[], StateDict] | None = None,
                 fsync: str = FSYNC_ALWAYS,
                 substrate: Any = None, node: Any = None) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise StoreError(f"fsync must be one of {_FSYNC_POLICIES}, "
                             f"got {fsync!r}")
        if snapshot_every < 0:
            raise StoreError("snapshot_every must be >= 0")
        self.backend = backend
        self.name = name
        self.snapshot_every = snapshot_every
        self.state_fn = state_fn
        self.fsync = fsync
        self._substrate = substrate
        self._node = node
        self._seq = 0
        self._since_fold = 0
        self.stats = {"appends": 0, "folds": 0, "recoveries": 0,
                      "replayed": 0, "skipped": 0, "torn_tails": 0,
                      "objects_saved": 0}

    # -- keys --------------------------------------------------------------

    @property
    def wal_key(self) -> str:
        return f"{self.name}.wal"

    @property
    def snap_key(self) -> str:
        return f"{self.name}.snap"

    def object_key(self, key: str) -> str:
        return f"{self.name}.{key}"

    def wal_bytes(self) -> bytes:
        """The raw journal bytes (tests and tooling read these)."""
        return self.backend.read(self.wal_key)

    # -- journaling --------------------------------------------------------

    def journal(self, region: str, op: dict[str, Any]) -> int:
        """Append one mutation record; returns its sequence number.

        ``op`` is ``{"o": "s"|"d"|"r", ...}`` (set / delete / restore)
        with raw Python values — encoding happens here, and an
        unencodable value raises
        :class:`~repro.errors.SerializationError` before anything is
        written, so callers can journal *first* and mutate memory only
        on success (write-ahead discipline end to end).
        """
        payload = {"q": self._seq + 1, "r": region}
        for field, value in op.items():
            payload[field] = encode_value(value) if field == "v" else value
        framed = wal.frame(_canonical(payload))
        self.backend.append(self.wal_key, framed)
        # The append is durable: past this point the record counts even
        # if a later fsync or fold crashes.
        self._seq += 1
        self._since_fold += 1
        self.stats["appends"] += 1
        self._emit("append", seq=self._seq, n=len(framed))
        if self.fsync == FSYNC_ALWAYS:
            self._sync(self.wal_key)
        if self.snapshot_every and self._since_fold >= self.snapshot_every \
                and self.state_fn is not None:
            # Write-ahead means the caller has not applied this record
            # in memory yet, so state_fn() lags the journal by exactly
            # this op — apply it to the fold's copy or the truncation
            # would silently drop it.
            state = self.state_fn()
            self._apply(state, payload)
            self.fold(state)
        return self._seq

    # -- snapshots ---------------------------------------------------------

    def fold(self, state: StateDict | None = None) -> None:
        """Fold the journal into a snapshot and truncate it.

        ``state`` defaults to ``state_fn()``. The snapshot is written
        atomically and stamped with the current sequence; the WAL is
        then reset. A crash between the two leaves stale records behind,
        which recovery skips by sequence.
        """
        if state is None:
            if self.state_fn is None:
                raise StoreError("fold() needs a state or a state_fn")
            state = self.state_fn()
        encoded = {region: {k: encode_value(v) for k, v in contents.items()}
                   for region, contents in state.items()}
        payload = _canonical({"q": self._seq, "s": encoded})
        self.backend.write(self.snap_key, wal.frame(payload))
        self.backend.write(self.wal_key, b"")
        if self.fsync != FSYNC_NEVER:
            self._sync(self.snap_key)
        self._since_fold = 0
        self.stats["folds"] += 1
        self._emit("fold", seq=self._seq, n=len(payload))

    # -- recovery ----------------------------------------------------------

    def recover(self) -> StateDict:
        """Rebuild the state: snapshot, then every newer valid record.

        Tolerates a torn WAL tail (the crash signature) by stopping at
        it; raises :class:`~repro.errors.StoreError` only for a corrupt
        *snapshot*, which atomic writes make impossible under the crash
        model — seeing it means real bit rot or misuse.
        """
        started = time.perf_counter()
        state: StateDict = {}
        snap_seq = 0
        raw_snap = self.backend.read(self.snap_key)
        if raw_snap:
            snap = json.loads(wal.single_record(raw_snap, what="snapshot"))
            snap_seq = snap["q"]
            state = {region: {k: decode_value(v)
                              for k, v in contents.items()}
                     for region, contents in snap["s"].items()}
        raw_wal = self.backend.read(self.wal_key)
        records, consumed, torn = wal.iter_records(raw_wal)
        replayed = skipped = 0
        last_seq = snap_seq
        for record in records:
            payload = json.loads(record)
            seq = payload["q"]
            if seq <= snap_seq:
                skipped += 1
                continue
            self._apply(state, payload)
            replayed += 1
            last_seq = seq
        self._seq = last_seq
        self._since_fold = replayed
        self.stats["recoveries"] += 1
        self.stats["replayed"] += replayed
        self.stats["skipped"] += skipped
        if torn:
            self.stats["torn_tails"] += 1
            # Truncate the torn tail: future appends must extend the
            # valid prefix, not pile up unreadably behind the garbage.
            self.backend.write(self.wal_key, raw_wal[:consumed])
        # Wall-clock replay duration only where durations are real
        # (file backends); 0.0 on the memory backend keeps simulated
        # traces byte-deterministic with store tracing enabled.
        duration = (time.perf_counter() - started
                    if getattr(self.backend, "wall_timed", True) else 0.0)
        self._emit("recover", seq=last_seq, records=replayed,
                   torn=int(torn), replay=duration)
        return state

    @staticmethod
    def _apply(state: StateDict, payload: dict[str, Any]) -> None:
        region = state.setdefault(payload["r"], {})
        op = payload["o"]
        if op == "s":
            region[payload["k"]] = decode_value(payload["v"])
        elif op == "d":
            region.pop(payload["k"], None)
        elif op == "r":
            state[payload["r"]] = {k: decode_value(v)
                                   for k, v in payload["v"].items()}
        else:  # an unknown op in a *checksummed* record is corruption
            raise StoreError(f"unknown journal op {op!r}")

    # -- named objects and logs (checkpoint cuts) --------------------------

    def save_object(self, key: str, obj: Any) -> None:
        """Atomically store ``obj`` under ``key`` (one checksummed record)."""
        payload = _canonical(encode_value(obj))
        self.backend.write(self.object_key(key), wal.frame(payload))
        if self.fsync != FSYNC_NEVER:
            self._sync(self.object_key(key))
        self.stats["objects_saved"] += 1
        self._emit("object", key=key, n=len(payload))

    def load_object(self, key: str) -> Any:
        """The object stored under ``key``, or ``None`` if absent."""
        raw = self.backend.read(self.object_key(key))
        if not raw:
            return None
        return decode_value(json.loads(
            wal.single_record(raw, what=f"object {key!r}")))

    def append_log(self, key: str, obj: Any) -> None:
        """Append ``obj`` as one record to the named log ``key``."""
        self.backend.append(self.object_key(key),
                            wal.frame(_canonical(encode_value(obj))))
        if self.fsync == FSYNC_ALWAYS:
            self._sync(self.object_key(key))

    def read_log(self, key: str) -> list[Any]:
        """Every valid record of the named log (torn tails tolerated)."""
        records, _, _ = wal.iter_records(
            self.backend.read(self.object_key(key)))
        return [decode_value(json.loads(r)) for r in records]

    # -- plumbing ----------------------------------------------------------

    def _sync(self, key: str) -> None:
        duration = self.backend.sync(key)
        self._emit("fsync", key=key, fsync=duration)

    def _emit(self, event: str, **fields: Any) -> None:
        substrate = self._substrate
        if substrate is None:
            return
        tracer = substrate.tracer
        if tracer is not None:
            tracer.emit("store", event, node=self._node, ns=self.name,
                        **fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DurableState {self.name!r} seq={self._seq} "
                f"since_fold={self._since_fold}>")
