"""repro — a reproduction of Chandy et al., "A World-Wide Distributed
System Using Java and the Internet" (HPDC 1996), in Python.

The package implements the paper's full design — dapplets, sessions,
inboxes/outboxes over FIFO channels, tokens, logical clocks, snapshots,
synchronization servlets and the application library — over a
deterministic simulated wide-area network (see DESIGN.md for the
substitution argument and the module inventory).

Quick start::

    from repro import World, Dapplet, Initiator, SessionSpec
    from repro.net import GeoLatency

    world = World(seed=1, latency=GeoLatency())
    ...dapplets, sessions...
    world.run()

The subpackages are importable directly for the full API:
``repro.sim``, ``repro.runtime``, ``repro.net``, ``repro.messages``, ``repro.mailbox``,
``repro.dapplet``, ``repro.session``, ``repro.rpc``, ``repro.services``,
``repro.patterns``, ``repro.apps``, ``repro.obs``, ``repro.registry``.
"""

from repro.dapplet.dapplet import Dapplet
from repro.dapplet.directory import AddressDirectory
from repro.dapplet.state import PersistentState
from repro.discovery import (
    DirectoryReplica,
    LeaseConfig,
    RegistrationAgent,
    Resolver,
)
from repro.errors import (
    BackendCrash,
    CapabilityDenied,
    DeadlockDetected,
    DeliveryTimeout,
    DiscoveryError,
    LeaseExpired,
    ReceiveTimeout,
    RegistryError,
    ReproError,
    RpcError,
    RpcTimeout,
    SessionError,
    SessionRejected,
    StoreError,
    TokenError,
)
from repro.mailbox.inbox import Inbox
from repro.mailbox.outbox import Outbox
from repro.messages.message import Message, message_type
from repro.net.address import InboxAddress, NodeAddress
from repro.obs import Tracer
from repro.registry import (
    Capability,
    DAppStoreReplica,
    Manifest,
    Principal,
    PublishAgent,
    Registry,
    StoreClient,
)
from repro.runtime import AsyncioSubstrate, SimSubstrate, Substrate
from repro.session.initiator import Initiator
from repro.session.session import Session, SessionContext
from repro.session.spec import Binding, MemberSpec, SessionSpec
from repro.store import (
    CrashPoint,
    DurableState,
    FileBackend,
    MemoryBackend,
    StorageBackend,
)
from repro.world import World

__version__ = "1.0.0"

__all__ = [
    "AddressDirectory",
    "AsyncioSubstrate",
    "BackendCrash",
    "Binding",
    "Capability",
    "CapabilityDenied",
    "CrashPoint",
    "DAppStoreReplica",
    "Dapplet",
    "DeadlockDetected",
    "DeliveryTimeout",
    "DirectoryReplica",
    "DiscoveryError",
    "DurableState",
    "FileBackend",
    "Inbox",
    "InboxAddress",
    "Initiator",
    "LeaseConfig",
    "LeaseExpired",
    "Manifest",
    "MemberSpec",
    "MemoryBackend",
    "Message",
    "NodeAddress",
    "Outbox",
    "PersistentState",
    "Principal",
    "PublishAgent",
    "ReceiveTimeout",
    "RegistrationAgent",
    "Registry",
    "RegistryError",
    "ReproError",
    "Resolver",
    "RpcError",
    "RpcTimeout",
    "Session",
    "SessionContext",
    "SessionError",
    "SessionRejected",
    "SessionSpec",
    "SimSubstrate",
    "StorageBackend",
    "StoreClient",
    "StoreError",
    "Substrate",
    "TokenError",
    "Tracer",
    "World",
    "message_type",
    "__version__",
]
