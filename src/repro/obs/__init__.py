"""Observability: structured tracing + metrics for the dapplet stack.

* :class:`Tracer` — attach to a substrate (``World(tracer=...)``) to
  record typed events from every layer, exportable as deterministic
  JSONL and as a counters/histograms summary.
* :mod:`repro.obs.replay` — run recorded fault schedules and diff the
  traces against committed goldens (the regression corpus).

See ``docs/OBSERVABILITY.md`` for the event schema and metric names.
"""

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import CATEGORIES, TraceEvent, Tracer

__all__ = [
    "CATEGORIES",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
]
