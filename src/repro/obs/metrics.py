"""Metrics: counters and latency histograms fed by the tracer.

The paper's debugging story is built on *observable* distributed state
(logical clocks, snapshots); this module is the quantitative half of the
observability layer: every traced event increments counters (globally,
per dapplet node, and per channel), and selected numeric fields —
round-trip times, mailbox wait times — are folded into log-bucketed
histograms. Summaries are plain dicts of JSON-encodable values so they
drop straight into ``BENCH_<id>.json`` files.

Everything here is deterministic: bucket boundaries are fixed powers of
two, keys are strings, and :meth:`Histogram.snapshot` sorts nothing at
runtime that could vary between identical runs.
"""

from __future__ import annotations

#: Inclusive upper bounds of the histogram buckets, in seconds:
#: powers of two from 1 µs to ~67 s, plus a catch-all overflow bucket.
BUCKET_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2 ** i for i in range(27))


class Histogram:
    """A fixed-bucket latency histogram (log-spaced, base 2).

    ``observe`` is O(number of buckets) in the worst case but typically
    exits early; the tracer only calls it for fields that carry a
    latency, never on the per-event fast path.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "overflow")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * len(BUCKET_BOUNDS)
        self.overflow = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding
        the ``q``-th observation (``inf`` if it landed in overflow)."""
        if not self.count:
            return 0.0
        target = max(1, int(q * self.count))
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return BUCKET_BOUNDS[i]
        return float("inf")

    def snapshot(self) -> dict:
        """A JSON-encodable summary (empty buckets omitted)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "buckets": {f"le_{BUCKET_BOUNDS[i]:.6g}": n
                        for i, n in enumerate(self.buckets) if n},
            "overflow": self.overflow,
        }


class MetricsRegistry:
    """Counters (global / per-node / per-channel) plus named histograms."""

    __slots__ = ("counters", "per_node", "per_channel", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.per_node: dict[str, dict[str, int]] = {}
        self.per_channel: dict[str, dict[str, int]] = {}
        self.histograms: dict[str, Histogram] = {}

    def count(self, key: str, node: str | None, channel: str | None) -> None:
        self.counters[key] = self.counters.get(key, 0) + 1
        if node is not None:
            by = self.per_node.get(node)
            if by is None:
                by = self.per_node[node] = {}
            by[key] = by.get(key, 0) + 1
        if channel is not None:
            by = self.per_channel.get(channel)
            if by is None:
                by = self.per_channel[channel] = {}
            by[key] = by.get(key, 0) + 1

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def summary(self) -> dict:
        """The full metrics summary, JSON-encodable and deterministic."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "per_node": {n: dict(sorted(c.items()))
                         for n, c in sorted(self.per_node.items())},
            "per_channel": {ch: dict(sorted(c.items()))
                            for ch, c in sorted(self.per_channel.items())},
            "histograms": {name: hist.snapshot()
                           for name, hist in sorted(self.histograms.items())},
        }
