"""Deterministic trace replay: recorded fault schedules as oracles.

On :class:`~repro.runtime.SimSubstrate` a trace is a pure function of
the program and the seed, so a recorded trace *is* a regression test:
re-run the same scenario under the same recorded fault schedule and any
byte of difference in the exported JSONL is a behaviour change somewhere
in the stack — kernel scheduling, fault decisions, retransmission
policy, delivery order, session protocol.

A *case* is a small JSON document describing one run of the canonical
scenario (a sessionful ping-pong stream under faults, exercising every
layer the tracer instruments)::

    {"seed": 7, "messages": 6,
     "faults": {"drop_prob": 0.2, "duplicate_prob": 0.1,
                "reorder_jitter": 0.05},
     "categories": ["net", "ep", "mbox", "session"]}

``"mixed": true`` adds two extra caller->responder links with
non-default delivery classes (UNRELIABLE telemetry and RELIABLE_SKIP
updates with a short skip timeout), so the corpus covers the
delivery-class frames — SKIP signals, class-stamped DATA, stale drops —
in both plain and encoded mode.

``"scenario": "token_probe"`` selects the second canonical scenario: a
ring of sharded token managers with one colour per shard and a ring of
agents forming a cross-shard wait cycle, so the golden pins the whole
manager-to-manager exchange — prepare forwarding, the edge-chasing
probe messages, the single-victim deadlock abort, and the cascade of
grants as the cycle unwinds.

``"scenario": "registry_audit"`` runs the multi-tenant scenario: owned
dapplets under :mod:`repro.registry` capability enforcement, producing
the ``reg`` audit stream — allow and deny events from the RPC
per-method gate, the session-establish gate, and the token
capability/quota gate — alongside the session and token traces of the
same run (see :func:`_run_registry_audit_case`).

``tests/obs/corpus/`` holds ~10 such cases with committed golden
traces; ``python -m repro.obs.replay <corpus_dir>`` regenerates the
goldens after an intentional behaviour change.
"""

from __future__ import annotations

import difflib
import itertools
import json
import pathlib
from typing import Any

from repro.obs.tracer import Tracer

#: Endpoint options the canonical scenario always runs with: generous
#: retry budget so even 30%-loss cases converge deterministically.
SCENARIO_ENDPOINT_OPTIONS = {"rto_initial": 0.1, "max_retries": 80}


def run_case(case: dict[str, Any]) -> Tracer:
    """Run the canonical scenario described by ``case``; return its tracer.

    The default scenario: two dapplets linked into a session by an
    initiator, a ping-pong stream of ``case["messages"]`` round trips
    under the recorded fault schedule, then clean termination — touching
    session setup/teardown, reliable channels under loss, mailboxes and
    clocks. ``"scenario": "token_probe"`` runs the sharded-token
    deadlock scenario instead (see the module docstring).
    """
    if case.get("scenario") == "token_probe":
        return _run_token_probe_case(case)
    if case.get("scenario") == "registry_audit":
        return _run_registry_audit_case(case)
    # Imported here, not at module top: the tracer must stay importable
    # from any layer without dragging in the whole dapplet stack.
    from repro import Dapplet, Initiator, SessionSpec, World
    from repro.messages import Text
    from repro.net import (RELIABLE_SKIP, UNRELIABLE, ConstantLatency,
                           FaultPlan)

    mixed = case.get("mixed", False)
    endpoint_options = dict(SCENARIO_ENDPOINT_OPTIONS)
    if mixed:
        # Shorter than the 0.1 RTO, so dropped RELIABLE_SKIP packets are
        # abandoned (SKIP frames on the wire) instead of retransmitted.
        endpoint_options["skip_timeout"] = 0.05
    tracer = Tracer(categories=case.get("categories"))
    world = World(seed=case["seed"],
                  latency=ConstantLatency(0.02),
                  faults=FaultPlan.from_dict(case.get("faults", {})),
                  endpoint_options=endpoint_options,
                  encoded=case.get("encoded", False),
                  tracer=tracer)

    class _Echo(Dapplet):
        kind = "obs-echo"

        def on_session_start(self, ctx):
            self.ctx = ctx
            if ctx.member != "responder":
                return None

            def respond():
                while ctx.active:
                    msg = yield ctx.inbox("in").receive()
                    ctx.outbox("out").send(Text(msg.text.replace("ping",
                                                                 "pong")))
            return respond()

    caller = world.dapplet(_Echo, "caltech.edu", "caller")
    world.dapplet(_Echo, "sydney.edu.au", "responder")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")

    spec = SessionSpec("obs-replay")
    spec.add_member("caller", inboxes=("in",))
    spec.add_member("responder", inboxes=(("in", "telemetry", "updates")
                                          if mixed else ("in",)))
    spec.bind("caller", "out", "responder", "in")
    spec.bind("responder", "out", "caller", "in")
    if mixed:
        spec.bind("caller", "tele", "responder", "telemetry",
                  delivery=UNRELIABLE)
        spec.bind("caller", "upd", "responder", "updates",
                  delivery=RELIABLE_SKIP)

    def director():
        session = yield from initiator.establish(spec, timeout=120.0)
        ctx = caller.ctx
        for i in range(case.get("messages", 5)):
            ctx.outbox("out").send(Text(f"ping {i}"))
            if mixed:
                ctx.outbox("tele").send(Text(f"tele {i}"))
                ctx.outbox("upd").send(Text(f"upd {i}"))
            yield ctx.inbox("in").receive()
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    return tracer


def _run_token_probe_case(case: dict[str, Any]) -> Tracer:
    """The sharded-token scenario: a wait cycle across every shard.

    ``case["shards"]`` managers (default 3) each home one colour; agent
    ``u<i>`` takes colour ``i`` then wants colour ``i+1`` (mod N), so the
    requests form one cycle spanning the whole ring. The probe protocol
    must pick exactly one victim; its abort releases the cycle and every
    survivor's second request is granted, after which all agents release
    everything and the world quiesces.
    """
    from repro import Dapplet, World
    from repro.errors import DeadlockDetected
    from repro.net import ConstantLatency
    from repro.services.tokens import ShardRing

    n = case.get("shards", 3)
    tracer = Tracer(categories=case.get("categories"))
    world = World(seed=case["seed"], latency=ConstantLatency(0.02),
                  encoded=case.get("encoded", False), tracer=tracer)

    # One colour homed on each shard, found by scanning candidates
    # against the same ring world.host_token_shards will build.
    ring = ShardRing([f"_tok{i}" for i in range(n)])
    homed: dict[str, str] = {}
    for i in itertools.count():
        color = f"col{i}"
        homed.setdefault(ring.home(color), color)
        if len(homed) == n:
            break
    chain = [homed[f"_tok{i}"] for i in range(n)]
    service = world.host_token_shards(n, {c: 1 for c in chain})

    class _User(Dapplet):
        kind = "obs-token-user"

    agents = [service.attach(world.dapplet(_User, f"u{i}.edu", f"u{i}"))
              for i in range(n)]
    outcomes = []

    def cycler(i):
        agent = agents[i]
        first, second = chain[i], chain[(i + 1) % n]
        yield agent.request({first: 1})
        # Staggered second requests give the cycle a stable youngest
        # waiter, hence a deterministic victim.
        yield world.kernel.timeout(0.5 + 0.1 * i)
        try:
            yield agent.request({second: 1})
            agent.release({second: 1})
            outcomes.append((i, "granted"))
        except DeadlockDetected:
            outcomes.append((i, "victim"))
        agent.release({first: 1})

    for i in range(n):
        world.process(cycler(i))
    world.run(until=60.0)
    world.run()
    if sum(1 for _, what in outcomes if what == "victim") != 1:
        raise AssertionError(f"expected exactly one victim: {outcomes}")
    service.check_conservation()
    return tracer


def _run_registry_audit_case(case: dict[str, Any]) -> Tracer:
    """The multi-tenant scenario: every registry gate allows and denies.

    Three principals: ``alice`` owns a counter service, ``bob`` (same
    org) holds grants for reads, session establishment and a 2-token
    ``gold`` quota, ``mallory`` (another org) holds nothing. The run
    walks each enforcement point both ways — bob's RPC read succeeds
    while his ungrunted ``bump`` and all of mallory's calls bounce; a
    bob session establishes and terminates while mallory's is rejected;
    bob's in-quota token request is granted while his over-quota request
    and mallory's ungranted one are refused — so the golden pins the
    full ``reg`` audit stream (allow/deny, cache hits, zero ``clat`` on
    the simulator) plus the session rejects and token denials it rides
    with, in plain and encoded mode alike.
    """
    from repro import Dapplet, Initiator, SessionSpec, World
    from repro.errors import CapabilityDenied, RpcError, SessionRejected
    from repro.net import ConstantLatency
    from repro.rpc import RemoteProxy, export
    from repro.services.tokens import TokenAgent, TokenCoordinator

    tracer = Tracer(categories=case.get("categories"))
    world = World(seed=case["seed"], latency=ConstantLatency(0.02),
                  endpoint_options=dict(SCENARIO_ENDPOINT_OPTIONS),
                  encoded=case.get("encoded", False), tracer=tracer)
    registry = world.registry
    alice = registry.principal("alice", "acme")
    bob = registry.principal("bob", "acme")
    mallory = registry.principal("mallory", "evil")
    registry.grant(bob, "acme/**", ("session.establish", "rpc.call:read"))
    registry.grant(bob, "tokens", ("token.request:gold",), quota=2)

    class _Counter:
        def __init__(self) -> None:
            self.value = 0

        def read(self) -> int:
            return self.value

        def bump(self) -> int:
            self.value += 1
            return self.value

    class _App(Dapplet):
        kind = "reg-app"

    svc = world.dapplet(_App, "svc.acme.com", "svc", owner=alice)
    bobapp = world.dapplet(_App, "bob.acme.com", "bobapp", owner=bob)
    mallapp = world.dapplet(_App, "mallory.evil.net", "mallapp",
                            owner=mallory)
    tokhost = world.dapplet(_App, "tok.acme.com", "tokhost")
    counter = export(svc, _Counter(), name="counter")
    coordinator = TokenCoordinator(tokhost, {"gold": 3})
    bob_init = world.dapplet(Initiator, "bob.acme.com", "bob-init",
                             owner=bob)
    mall_init = world.dapplet(Initiator, "mallory.evil.net", "mall-init",
                              owner=mallory)
    outcomes: list[str] = []

    def session_spec(member: str) -> SessionSpec:
        spec = SessionSpec(f"audit-{member}")
        spec.add_member("svc", inboxes=("in",))
        spec.add_member(member, inboxes=("in",))
        spec.bind(member, "out", "svc", "in")
        return spec

    def driver():
        bob_proxy = RemoteProxy(bobapp, counter.pointer)
        mall_proxy = RemoteProxy(mallapp, counter.pointer)
        value = yield bob_proxy.call("read", timeout=30.0)
        outcomes.append(f"bob.read={value}")
        for proxy, method, tag in ((bob_proxy, "bump", "bob.bump"),
                                   (mall_proxy, "read", "mallory.read")):
            try:
                yield proxy.call(method, timeout=30.0)
                outcomes.append(f"{tag}=granted")
            except RpcError as exc:
                outcomes.append(f"{tag}={exc.remote_type}")
        session = yield from bob_init.establish(session_spec("bobapp"),
                                                timeout=120.0)
        outcomes.append("bob.session=up")
        yield from session.terminate()
        try:
            yield from mall_init.establish(session_spec("mallapp"),
                                           timeout=120.0)
            outcomes.append("mallory.session=up")
        except SessionRejected as exc:
            outcomes.append(f"mallory.session={exc.reason}")
        bob_agent = TokenAgent(bobapp, coordinator.pointer)
        mall_agent = TokenAgent(mallapp, coordinator.pointer)
        granted = yield bob_agent.request({"gold": 2})
        bob_agent.release(dict(granted))
        outcomes.append("bob.tokens=granted")
        for agent, tokens, tag in ((bob_agent, {"gold": 3}, "bob.quota"),
                                   (mall_agent, {"gold": 1},
                                    "mallory.tokens")):
            try:
                yield agent.request(tokens)
                outcomes.append(f"{tag}=granted")
            except CapabilityDenied as exc:
                outcomes.append(f"{tag}={exc.verb}")

    world.run(until=world.process(driver()))
    world.run()
    expected = ["bob.read=0", "bob.bump=PermissionError",
                "mallory.read=PermissionError", "bob.session=up",
                "mallory.session=capability:session.establish",
                "bob.tokens=granted", "bob.quota=quota:gold",
                "mallory.tokens=token.request:gold"]
    if outcomes != expected:
        raise AssertionError(f"registry audit diverged: {outcomes}")
    coordinator.check_conservation()
    return tracer


def diff_traces(golden: str, actual: str, *, label: str = "trace",
                max_lines: int = 40) -> str:
    """A unified diff between two JSONL traces; ``""`` when identical."""
    if golden == actual:
        return ""
    diff = difflib.unified_diff(
        golden.splitlines(keepends=True), actual.splitlines(keepends=True),
        fromfile=f"{label}.golden", tofile=f"{label}.actual")
    lines = list(diff)
    if len(lines) > max_lines:
        lines = lines[:max_lines] + [
            f"... ({len(lines) - max_lines} more diff lines)\n"]
    return "".join(lines)


def corpus_cases(corpus_dir: "str | pathlib.Path"):
    """Yield ``(case_path, golden_path)`` pairs from a corpus directory."""
    corpus = pathlib.Path(corpus_dir)
    for case_path in sorted(corpus.glob("*.json")):
        yield case_path, case_path.with_suffix(".golden.jsonl")


def regenerate(corpus_dir: "str | pathlib.Path") -> list[pathlib.Path]:
    """Re-run every corpus case and rewrite its golden trace."""
    written = []
    for case_path, golden_path in corpus_cases(corpus_dir):
        case = json.loads(case_path.read_text())
        golden_path.write_text(run_case(case).to_jsonl())
        written.append(golden_path)
    return written


if __name__ == "__main__":  # pragma: no cover - maintenance CLI
    import sys
    target = sys.argv[1] if len(sys.argv) > 1 else "tests/obs/corpus"
    for path in regenerate(target):
        print(f"regenerated {path}")
