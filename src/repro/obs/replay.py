"""Deterministic trace replay: recorded fault schedules as oracles.

On :class:`~repro.runtime.SimSubstrate` a trace is a pure function of
the program and the seed, so a recorded trace *is* a regression test:
re-run the same scenario under the same recorded fault schedule and any
byte of difference in the exported JSONL is a behaviour change somewhere
in the stack — kernel scheduling, fault decisions, retransmission
policy, delivery order, session protocol.

A *case* is a small JSON document describing one run of the canonical
scenario (a sessionful ping-pong stream under faults, exercising every
layer the tracer instruments)::

    {"seed": 7, "messages": 6,
     "faults": {"drop_prob": 0.2, "duplicate_prob": 0.1,
                "reorder_jitter": 0.05},
     "categories": ["net", "ep", "mbox", "session"]}

``"mixed": true`` adds two extra caller->responder links with
non-default delivery classes (UNRELIABLE telemetry and RELIABLE_SKIP
updates with a short skip timeout), so the corpus covers the
delivery-class frames — SKIP signals, class-stamped DATA, stale drops —
in both plain and encoded mode.

``tests/obs/corpus/`` holds ~10 such cases with committed golden
traces; ``python -m repro.obs.replay <corpus_dir>`` regenerates the
goldens after an intentional behaviour change.
"""

from __future__ import annotations

import difflib
import json
import pathlib
from typing import Any

from repro.obs.tracer import Tracer

#: Endpoint options the canonical scenario always runs with: generous
#: retry budget so even 30%-loss cases converge deterministically.
SCENARIO_ENDPOINT_OPTIONS = {"rto_initial": 0.1, "max_retries": 80}


def run_case(case: dict[str, Any]) -> Tracer:
    """Run the canonical scenario described by ``case``; return its tracer.

    The scenario: two dapplets linked into a session by an initiator, a
    ping-pong stream of ``case["messages"]`` round trips under the
    recorded fault schedule, then clean termination — touching session
    setup/teardown, reliable channels under loss, mailboxes and clocks.
    """
    # Imported here, not at module top: the tracer must stay importable
    # from any layer without dragging in the whole dapplet stack.
    from repro import Dapplet, Initiator, SessionSpec, World
    from repro.messages import Text
    from repro.net import (RELIABLE_SKIP, UNRELIABLE, ConstantLatency,
                           FaultPlan)

    mixed = case.get("mixed", False)
    endpoint_options = dict(SCENARIO_ENDPOINT_OPTIONS)
    if mixed:
        # Shorter than the 0.1 RTO, so dropped RELIABLE_SKIP packets are
        # abandoned (SKIP frames on the wire) instead of retransmitted.
        endpoint_options["skip_timeout"] = 0.05
    tracer = Tracer(categories=case.get("categories"))
    world = World(seed=case["seed"],
                  latency=ConstantLatency(0.02),
                  faults=FaultPlan.from_dict(case.get("faults", {})),
                  endpoint_options=endpoint_options,
                  encoded=case.get("encoded", False),
                  tracer=tracer)

    class _Echo(Dapplet):
        kind = "obs-echo"

        def on_session_start(self, ctx):
            self.ctx = ctx
            if ctx.member != "responder":
                return None

            def respond():
                while ctx.active:
                    msg = yield ctx.inbox("in").receive()
                    ctx.outbox("out").send(Text(msg.text.replace("ping",
                                                                 "pong")))
            return respond()

    caller = world.dapplet(_Echo, "caltech.edu", "caller")
    world.dapplet(_Echo, "sydney.edu.au", "responder")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")

    spec = SessionSpec("obs-replay")
    spec.add_member("caller", inboxes=("in",))
    spec.add_member("responder", inboxes=(("in", "telemetry", "updates")
                                          if mixed else ("in",)))
    spec.bind("caller", "out", "responder", "in")
    spec.bind("responder", "out", "caller", "in")
    if mixed:
        spec.bind("caller", "tele", "responder", "telemetry",
                  delivery=UNRELIABLE)
        spec.bind("caller", "upd", "responder", "updates",
                  delivery=RELIABLE_SKIP)

    def director():
        session = yield from initiator.establish(spec, timeout=120.0)
        ctx = caller.ctx
        for i in range(case.get("messages", 5)):
            ctx.outbox("out").send(Text(f"ping {i}"))
            if mixed:
                ctx.outbox("tele").send(Text(f"tele {i}"))
                ctx.outbox("upd").send(Text(f"upd {i}"))
            yield ctx.inbox("in").receive()
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    return tracer


def diff_traces(golden: str, actual: str, *, label: str = "trace",
                max_lines: int = 40) -> str:
    """A unified diff between two JSONL traces; ``""`` when identical."""
    if golden == actual:
        return ""
    diff = difflib.unified_diff(
        golden.splitlines(keepends=True), actual.splitlines(keepends=True),
        fromfile=f"{label}.golden", tofile=f"{label}.actual")
    lines = list(diff)
    if len(lines) > max_lines:
        lines = lines[:max_lines] + [
            f"... ({len(lines) - max_lines} more diff lines)\n"]
    return "".join(lines)


def corpus_cases(corpus_dir: "str | pathlib.Path"):
    """Yield ``(case_path, golden_path)`` pairs from a corpus directory."""
    corpus = pathlib.Path(corpus_dir)
    for case_path in sorted(corpus.glob("*.json")):
        yield case_path, case_path.with_suffix(".golden.jsonl")


def regenerate(corpus_dir: "str | pathlib.Path") -> list[pathlib.Path]:
    """Re-run every corpus case and rewrite its golden trace."""
    written = []
    for case_path, golden_path in corpus_cases(corpus_dir):
        case = json.loads(case_path.read_text())
        golden_path.write_text(run_case(case).to_jsonl())
        written.append(golden_path)
    return written


if __name__ == "__main__":  # pragma: no cover - maintenance CLI
    import sys
    target = sys.argv[1] if len(sys.argv) > 1 else "tests/obs/corpus"
    for path in regenerate(target):
        print(f"regenerated {path}")
