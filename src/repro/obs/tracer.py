"""Structured tracing across the dapplet stack.

A :class:`Tracer` attached to a substrate records one typed
:class:`TraceEvent` per interesting occurrence in any layer — kernel
schedule/fire, datagram send/drop/deliver, DATA/ACK/retransmit at the
endpoint, mailbox enqueue/dequeue/await, session join/leave, token
grant/release — each stamped with the substrate's time (virtual on the
simulator, wall-clock on asyncio) and, where the event belongs to a
dapplet, that dapplet's Lamport clock.

Attachment is a single attribute on the substrate::

    tracer = Tracer()
    world = World(seed=1, tracer=tracer)      # or tracer.attach(substrate)
    ...
    world.run()
    tracer.export_jsonl("trace.jsonl")
    print(tracer.summary()["counters"])

Every instrumentation site in the stack is guarded by a plain ``is not
None`` check on the substrate's ``tracer`` attribute; with no tracer
attached the cost is one attribute load and a branch — no string
formatting, no allocation. With a tracer attached, events outside its
``categories`` filter are rejected before any record is built.

On :class:`~repro.runtime.SimSubstrate` the trace is a deterministic
function of the seed: two runs of the same program with the same seed
produce byte-identical JSONL (see :meth:`to_jsonl`), which makes traces
usable as regression oracles (:mod:`repro.obs.replay`).

This module deliberately imports nothing from the concrete simulator or
network layers, so any layer may import it without re-coupling to a
runtime.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Any, Callable, Iterable

from repro.obs.metrics import MetricsRegistry

#: Every event category the stack emits. A ``Tracer(categories=...)``
#: restricted to a subset rejects other categories at the emit boundary.
CATEGORIES = ("kernel", "net", "ep", "mbox", "session", "tokens", "dir",
              "store", "reg")

#: Numeric event fields folded into histograms, field -> metric. ``rtt``
#: and ``wait`` are latencies; ``cwnd`` (carried by the endpoint's
#: window events: cwnd/stall/resume) is a size distribution — its
#: histogram shows which congestion-window bands a run lived in;
#: ``rlat`` is the discovery resolver's lookup latency (cache misses;
#: hits return without a round-trip and are counted, not timed);
#: ``dlat`` is one-way delivery latency of UNRELIABLE frames (send
#: timestamp to delivery); ``slat`` the send-to-abandon wait of a
#: RELIABLE_SKIP packet that hit its skip timeout; ``fsync`` and
#: ``replay`` are the durable store's sync and recovery durations
#: (wall-clock on file backends, exactly 0.0 on the memory backend so
#: simulated traces stay byte-deterministic); ``route`` is the sharded
#: token service's request-to-grant latency at the coordinating shard,
#: including every cross-shard prepare hop; ``clat`` is the registry's
#: capability-check latency (exactly 0.0 on the simulated substrate —
#: virtual time does not advance inside a synchronous check — so
#: audited sim traces stay byte-deterministic).
_HISTOGRAM_FIELDS = (("rtt", "ep.rtt"), ("wait", "mbox.wait"),
                     ("cwnd", "ep.cwnd"), ("rlat", "dir.resolve"),
                     ("dlat", "ep.dlat"), ("slat", "ep.skip_wait"),
                     ("fsync", "store.fsync"), ("replay", "store.replay"),
                     ("route", "tok.route"), ("clat", "reg.check"))


class TraceEvent:
    """One traced occurrence.

    ``t`` is substrate time; ``cat``/``name`` type the event; ``node``
    is the owning node address (as a string) when the event belongs to
    one; ``clk`` the owning dapplet's Lamport time at emission (``None``
    when no clock is registered for the node); ``fields`` the
    event-specific payload.
    """

    __slots__ = ("seq", "t", "cat", "name", "node", "clk", "fields")

    def __init__(self, seq: int, t: float, cat: str, name: str,
                 node: str | None, clk: int | None,
                 fields: dict[str, Any]) -> None:
        self.seq = seq
        self.t = t
        self.cat = cat
        self.name = name
        self.node = node
        self.clk = clk
        self.fields = fields

    def to_dict(self) -> dict[str, Any]:
        # The ordinal serializes as "i": several protocol events carry a
        # "seq" field (the channel sequence number) which must keep the
        # flat key without clobbering the envelope.
        record: dict[str, Any] = {"i": self.seq, "t": self.t,
                                  "cat": self.cat, "ev": self.name}
        if self.node is not None:
            record["node"] = self.node
        if self.clk is not None:
            record["clk"] = self.clk
        if self.fields:
            record.update(self.fields)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceEvent #{self.seq} t={self.t:.6f} "
                f"{self.cat}/{self.name} {self.fields}>")


class Tracer:
    """Records typed events and aggregates metrics for one run.

    Parameters
    ----------
    categories:
        Restrict recording to these categories (default: all of
        :data:`CATEGORIES`). The ``kernel`` category is by far the
        noisiest; corpus traces typically exclude it.
    metrics_only:
        Keep counters and histograms but retain no event objects —
        the cheap mode benchmarks use to fold protocol metrics into
        their ``BENCH_<id>.json`` output.
    max_events:
        Hard cap on retained events; later events still count in the
        metrics but are dropped from the trace (``dropped_events``
        records how many). ``None`` means unbounded.
    """

    def __init__(self, *, categories: Iterable[str] | None = None,
                 metrics_only: bool = False,
                 max_events: int | None = None) -> None:
        if categories is not None:
            categories = frozenset(categories)
            unknown = categories - frozenset(CATEGORIES)
            if unknown:
                raise ValueError(f"unknown trace categories: {sorted(unknown)}")
        self.categories: frozenset[str] | None = categories
        self.metrics_only = metrics_only
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped_events = 0
        self.metrics = MetricsRegistry()
        self._seq = 0
        self._now: Callable[[], float] | None = None
        self._clocks: dict[Any, Any] = {}

    # -- wiring ----------------------------------------------------------

    def attach(self, substrate: Any) -> "Tracer":
        """Attach to a substrate: become its ``tracer`` and read its clock."""
        substrate.tracer = self
        self._now = lambda: substrate.now
        return self

    def detach(self, substrate: Any) -> None:
        """Stop tracing ``substrate`` (recorded events are kept)."""
        if getattr(substrate, "tracer", None) is self:
            substrate.tracer = None

    def register_clock(self, node: Any, clock: Any) -> None:
        """Stamp events for ``node`` with ``clock.time`` (a Lamport clock).

        :meth:`repro.world.World.attach_tracer` registers every
        dapplet's clock automatically; hand-wired stacks call this
        directly.
        """
        self._clocks[node] = clock

    def enabled(self, cat: str) -> bool:
        return self.categories is None or cat in self.categories

    # -- recording -------------------------------------------------------

    def emit(self, cat: str, name: str, *, node: Any = None,
             t: float | None = None, **fields: Any) -> None:
        """Record one event. Call sites guard with ``tracer is not None``."""
        if self.categories is not None and cat not in self.categories:
            return
        if t is None:
            t = self._now() if self._now is not None else 0.0
        clk = None
        if node is not None:
            clock = self._clocks.get(node)
            if clock is not None:
                clk = clock.time
            node = str(node)
        key = f"{cat}.{name}"
        self.metrics.count(key, node, fields.get("ch"))
        for field, metric in _HISTOGRAM_FIELDS:
            value = fields.get(field)
            if value is not None:
                self.metrics.observe(metric, value)
        if self.metrics_only:
            return
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(TraceEvent(self._seq, t, cat, name, node, clk,
                                      fields))
        self._seq += 1

    def __len__(self) -> int:
        return len(self.events)

    def select(self, cat: str | None = None,
               name: str | None = None) -> list[TraceEvent]:
        """The recorded events matching ``cat`` and/or ``name``."""
        return [ev for ev in self.events
                if (cat is None or ev.cat == cat)
                and (name is None or ev.name == name)]

    # -- export ----------------------------------------------------------

    def to_jsonl(self) -> str:
        """The trace as JSONL: one sorted-key JSON object per line.

        Key order, separators and float formatting are all fixed, so on
        the deterministic substrate two runs with the same seed yield
        byte-identical output.
        """
        out = io.StringIO()
        for event in self.events:
            out.write(json.dumps(event.to_dict(), sort_keys=True,
                                 separators=(",", ":")))
            out.write("\n")
        return out.getvalue()

    def export_jsonl(self, path: "str | pathlib.Path") -> pathlib.Path:
        """Write :meth:`to_jsonl` to ``path`` and return it."""
        path = pathlib.Path(path)
        path.write_text(self.to_jsonl())
        return path

    def summary(self) -> dict:
        """Counters + per-node/per-channel breakdowns + histograms."""
        result = self.metrics.summary()
        result["events"] = (len(self.events) if not self.metrics_only
                            else sum(self.metrics.counters.values()))
        result["dropped_events"] = self.dropped_events
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tracer events={len(self.events)} "
                f"counters={len(self.metrics.counters)}>")
