"""Generic application-payload messages.

Protocol-specific messages (session link-up, token transfers, RPC
envelopes, snapshot markers, ...) are defined next to the code that
speaks them; only the two generic payload carriers every application can
use live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.messages.message import Message, message_type


@message_type("sys.text")
@dataclass(frozen=True)
class Text(Message):
    """A plain text payload."""

    text: str


@message_type("sys.blob")
@dataclass(frozen=True)
class Blob(Message):
    """An arbitrary wire-encodable mapping payload."""

    data: dict[str, Any] = field(default_factory=dict)
