"""The ``Message`` base class and its type registry.

A message type is a frozen dataclass decorated with
:func:`message_type`, which registers it under a wire name so the
receiving side can reconstruct "an instance of the sending object":

    >>> @message_type("calendar.propose")
    ... @dataclass(frozen=True)
    ... class Propose(Message):
    ...     slot: int
    ...     proposer: str

Field values must be wire-encodable: ``None``, ``bool``, ``int``,
``float``, ``str``, addresses (:class:`NodeAddress`,
:class:`InboxAddress`), nested messages, and lists/tuples/dicts of
those (dict keys must be strings). Tuples are normalized to tuples on
decode for hashability.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, TypeVar

from repro.errors import SerializationError

_REGISTRY: dict[str, type["Message"]] = {}

M = TypeVar("M", bound="Message")


class Message:
    """Base class of everything that travels between dapplets.

    Subclasses must be dataclasses registered with
    :func:`message_type`. The base class carries no fields; identity on
    the wire comes entirely from the registered type name plus the
    dataclass fields.
    """

    #: Wire name, set by :func:`message_type`.
    _wire_name: str = ""

    def to_fields(self) -> dict[str, Any]:
        """Shallow mapping of field name to (not yet encoded) value."""
        if not dataclasses.is_dataclass(self):
            raise SerializationError(
                f"{type(self).__name__} is not a dataclass message")
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}

    @classmethod
    def from_fields(cls: type[M], fields: dict[str, Any]) -> M:
        """Reconstruct an instance from decoded field values."""
        return cls(**fields)

    @property
    def wire_name(self) -> str:
        return self._wire_name


def message_type(name: str) -> Callable[[type[M]], type[M]]:
    """Class decorator registering a :class:`Message` dataclass.

    Names are global to the process; a collision (two different classes
    claiming one name) is an error, but re-registering the same class —
    which happens under test re-imports — is tolerated.
    """

    def register(cls: type[M]) -> type[M]:
        if not (isinstance(cls, type) and issubclass(cls, Message)):
            raise TypeError(f"{cls!r} must subclass Message")
        if not dataclasses.is_dataclass(cls):
            raise TypeError(
                f"{cls.__name__} must be a dataclass (apply @dataclass "
                "below @message_type)")
        existing = _REGISTRY.get(name)
        if existing is not None and (existing.__module__, existing.__qualname__) \
                != (cls.__module__, cls.__qualname__):
            raise SerializationError(
                f"message type name {name!r} already registered "
                f"by {existing.__qualname__}")
        cls._wire_name = name
        _REGISTRY[name] = cls
        return cls

    return register


def lookup(name: str) -> type[Message]:
    """The class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SerializationError(f"unknown message type {name!r}") from None


def registered_types() -> dict[str, type[Message]]:
    """A copy of the registry (for introspection and docs)."""
    return dict(_REGISTRY)
