"""The object <-> wire-string codec.

JSON, with tagged objects for the types that are not JSON-native:

* ``{"$node": "host:port"}`` — :class:`NodeAddress`
* ``{"$inbox": "host:port/ref"}`` — :class:`InboxAddress`
* ``{"$msg": [name, fields]}`` — a nested :class:`Message`
* ``{"$tuple": [...]}`` — a tuple (distinguished from list so
  hashable payloads survive the round trip)
* ``{"$bytes": "..."}`` — ``bytes`` (base64; ``bytearray`` and
  ``memoryview`` are accepted and come back as ``bytes``)

The top level is ``{"t": name, "f": fields}``. The value codec is also
exposed as :func:`encode_value`/:func:`decode_value` for layers that
persist application values rather than ship them — the durable state
journal (:mod:`repro.store`) uses it so anything a region can hold on
the wire can also be replayed from disk, and anything it cannot hold
fails *typed* (:class:`~repro.errors.SerializationError`) instead of
corrupting a log.
"""

from __future__ import annotations

import base64
import json
from typing import Any

from repro.errors import SerializationError
from repro.messages.message import Message, lookup
from repro.net.address import InboxAddress, NodeAddress


def _encode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, NodeAddress):
        return {"$node": str(value)}
    if isinstance(value, InboxAddress):
        return {"$inbox": str(value)}
    if isinstance(value, Message):
        return {"$msg": [value.wire_name,
                         {k: _encode(v) for k, v in value.to_fields().items()}]}
    if isinstance(value, tuple):
        return {"$tuple": [_encode(v) for v in value]}
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {"$bytes": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise SerializationError(
                    f"dict keys on the wire must be strings, got {k!r}")
            if k.startswith("$"):
                raise SerializationError(
                    f"dict keys may not start with '$' (reserved): {k!r}")
            out[k] = _encode(v)
        return out
    raise SerializationError(
        f"value of type {type(value).__name__} is not wire-encodable: {value!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode(v) for v in value]
    if isinstance(value, dict):
        if "$node" in value:
            return NodeAddress.parse(value["$node"])
        if "$inbox" in value:
            return InboxAddress.parse(value["$inbox"])
        if "$tuple" in value:
            return tuple(_decode(v) for v in value["$tuple"])
        if "$bytes" in value:
            return base64.b64decode(value["$bytes"])
        if "$msg" in value:
            name, fields = value["$msg"]
            return _instantiate(name, fields)
        return {k: _decode(v) for k, v in value.items()}
    return value


def _instantiate(name: str, fields: dict[str, Any]) -> Message:
    cls = lookup(name)
    try:
        return cls.from_fields({k: _decode(v) for k, v in fields.items()})
    except TypeError as exc:
        raise SerializationError(
            f"cannot reconstruct {name!r} from fields {sorted(fields)}: {exc}"
        ) from exc


def encode_value(value: Any) -> Any:
    """``value`` as JSON-dumpable data, tagged forms for the rest.

    Total over the wire-safe domain (None/bool/int/float/str, bytes,
    tuples, lists, string-keyed dicts, addresses, Messages — nested
    arbitrarily); anything else raises
    :class:`~repro.errors.SerializationError` without partial effects.
    """
    return _encode(value)


def decode_value(data: Any) -> Any:
    """Invert :func:`encode_value` (after a ``json.loads`` round trip)."""
    return _decode(data)


def dumps(message: Message) -> str:
    """Serialize ``message`` to its wire string."""
    if not isinstance(message, Message):
        raise SerializationError(
            f"can only send Message subclasses, got {type(message).__name__}")
    if not message.wire_name:
        raise SerializationError(
            f"{type(message).__name__} is not registered; apply @message_type")
    fields = {k: _encode(v) for k, v in message.to_fields().items()}
    return json.dumps({"t": message.wire_name, "f": fields},
                      separators=(",", ":"))


def loads(wire: str) -> Message:
    """Reconstruct a message from its wire string."""
    try:
        obj = json.loads(wire)
        name, fields = obj["t"], obj["f"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise SerializationError(f"malformed wire string: {wire[:80]!r}") from exc
    return _instantiate(name, fields)
