"""The message model.

The paper (§3.2): "Objects that are sent from one process to another are
subclasses of a message class. An object that is sent by a process is
converted into a string, sent across the network, and then reconstructed
back into its original type by the receiving process."

:class:`Message` is that base class; subclasses declare dataclass fields
and register under a type name. :func:`dumps`/:func:`loads` are the
string codec (JSON with tagged encodings for addresses and nested
messages).
"""

from repro.messages.message import Message, message_type, registered_types
from repro.messages.serialize import decode_value, dumps, encode_value, loads
from repro.messages.system import Blob, Text

__all__ = [
    "Blob",
    "Message",
    "Text",
    "decode_value",
    "dumps",
    "encode_value",
    "loads",
    "message_type",
    "registered_types",
]
