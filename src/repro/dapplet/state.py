"""Persistent dapplet state, partitioned into regions.

The paper (§2.2, "Persistent State Across Multiple Temporary Sessions"):
"the state of an executive committee member's appointments calendar must
persist ... Different parts of the state may be accessed and modified by
different distributed sessions. For instance, a distributed session to
set up an executive committee meeting may have access to Mondays and
Fridays on one user's calendar but not to other days ... Two sessions
must not be allowed to proceed concurrently if one modifies variables
accessed by the other."

A :class:`PersistentState` is a set of named :class:`Region` objects —
key/value stores that outlive sessions. A session declares, per member,
which regions it reads and which it writes; the session manager's
interference check (:mod:`repro.session.interference`) refuses to
schedule conflicting sessions concurrently, and each session touches
state only through :class:`RegionView` objects that enforce the declared
access mode.

Durability: constructed with a :class:`~repro.store.DurableState`, a
``PersistentState`` first *recovers* whatever that store holds
(snapshot + valid WAL prefix) and from then on journals every mutation
— ``set``, ``delete``, ``restore`` — to the write-ahead log *before*
applying it in memory. Mutations made through a :class:`RegionView`
go through the same region methods, so session writes are journaled
transparently. A value the codec cannot encode fails typed
(:class:`~repro.errors.SerializationError`) with the region untouched.
Worlds built with ``World(store=...)`` give every dapplet a durable
state automatically; ``World.restart_dapplet`` rebuilds one from it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.errors import StoreError

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.durable import DurableState

#: Access modes a session may declare on a region.
READ = "r"
WRITE = "rw"
MODES = (READ, WRITE)


class Region:
    """One named partition of a dapplet's persistent state."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._data: dict[str, Any] = {}
        #: Bumped on every mutation; lets checkpoints and tests detect
        #: writes cheaply.
        self.version = 0
        #: Write-ahead hook installed by a durable PersistentState;
        #: called with the op dict before the mutation applies, so a
        #: journaling failure (unencodable value, crashed backend)
        #: leaves the in-memory region exactly as it was.
        self._journal: Callable[[dict[str, Any]], Any] | None = None

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def set(self, key: str, value: Any) -> None:
        if self._journal is not None:
            self._journal({"o": "s", "k": key, "v": value})
        self._data[key] = value
        self.version += 1

    def delete(self, key: str) -> None:
        if key in self._data:
            if self._journal is not None:
                self._journal({"o": "d", "k": key})
            del self._data[key]
            self.version += 1

    def keys(self) -> list[str]:
        return sorted(self._data)

    def items(self) -> Iterator[tuple[str, Any]]:
        return iter(sorted(self._data.items()))

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> dict[str, Any]:
        """A shallow copy (used by checkpointing)."""
        return dict(self._data)

    def restore(self, data: dict[str, Any]) -> None:
        """Replace contents (used by checkpoint recovery)."""
        if self._journal is not None:
            self._journal({"o": "r", "v": dict(data)})
        self._data = dict(data)
        self.version += 1


class RegionView:
    """A session's handle on a region, enforcing its declared mode.

    Reads are always allowed; mutating methods raise ``PermissionError``
    unless the session declared write access.
    """

    def __init__(self, region: Region, mode: str) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self._region = region
        self.mode = mode

    @property
    def name(self) -> str:
        return self._region.name

    @property
    def writable(self) -> bool:
        return self.mode == WRITE

    def get(self, key: str, default: Any = None) -> Any:
        return self._region.get(key, default)

    def keys(self) -> list[str]:
        return self._region.keys()

    def items(self) -> Iterator[tuple[str, Any]]:
        return self._region.items()

    def __contains__(self, key: str) -> bool:
        return key in self._region

    def _require_write(self) -> None:
        if not self.writable:
            raise PermissionError(
                f"session has read-only access to region {self.name!r}")

    def set(self, key: str, value: Any) -> None:
        self._require_write()
        self._region.set(key, value)

    def delete(self, key: str) -> None:
        self._require_write()
        self._region.delete(key)


class PersistentState:
    """The collection of a dapplet's regions.

    Pass ``durable`` (a :class:`~repro.store.DurableState`) to make the
    state survive its owner: prior contents are recovered immediately
    and every later mutation is journaled — see :meth:`attach`.
    """

    def __init__(self, durable: "DurableState | None" = None) -> None:
        self._regions: dict[str, Region] = {}
        #: The attached :class:`~repro.store.DurableState`, or ``None``.
        self.durable: "DurableState | None" = None
        if durable is not None:
            self.attach(durable)

    def attach(self, durable: "DurableState") -> int:
        """Attach a durable layer; returns the number of regions recovered.

        Recovers the store's contents into this (empty) state *without*
        journaling, wires the store's fold source to :meth:`snapshot`,
        and installs write-ahead hooks so every subsequent mutation —
        including ones made through a :class:`RegionView` — hits the
        log before it hits memory.
        """
        if self.durable is not None:
            raise StoreError("this state already has a durable layer")
        if self._regions:
            raise StoreError("attach a durable layer before the first "
                             "region exists, not after")
        recovered = durable.recover()
        self.durable = durable
        durable.state_fn = self.snapshot
        for name, contents in recovered.items():
            region = self.region(name)  # installs the journal hook too
            region._data = dict(contents)
            region.version += 1
        return len(recovered)

    def region(self, name: str) -> Region:
        """The region called ``name``, created empty on first use."""
        region = self._regions.get(name)
        if region is None:
            region = Region(name)
            if self.durable is not None:
                durable = self.durable
                region._journal = \
                    lambda op, _name=name: durable.journal(_name, op)
            self._regions[name] = region
        return region

    def regions(self) -> list[str]:
        return sorted(self._regions)

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Deep-enough copy of all non-empty regions (used by
        checkpointing, and as the durable layer's fold source).

        An empty region is indistinguishable from an absent one: both
        are excluded, so a snapshot is exactly what a replay of the
        journal rebuilds — the equivalence folds and crash recovery
        depend on — and :meth:`restore` of a snapshot is a true
        inverse. (Regions are created on first access anyway, so the
        distinction has no behavioural footprint.)
        """
        return {name: r.snapshot() for name, r in self._regions.items()
                if r._data}

    def restore(self, data: dict[str, dict[str, Any]]) -> None:
        """Roll the whole state back to ``data`` (a prior
        :meth:`snapshot`): listed regions are replaced, existing
        regions not listed are cleared — so restoring a checkpoint
        erases regions created after it. Every step is journaled.
        """
        for name, region in self._regions.items():
            if name not in data and region._data:
                region.restore({})
        for name, contents in data.items():
            self.region(name).restore(contents)
