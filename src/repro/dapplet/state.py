"""Persistent dapplet state, partitioned into regions.

The paper (§2.2, "Persistent State Across Multiple Temporary Sessions"):
"the state of an executive committee member's appointments calendar must
persist ... Different parts of the state may be accessed and modified by
different distributed sessions. For instance, a distributed session to
set up an executive committee meeting may have access to Mondays and
Fridays on one user's calendar but not to other days ... Two sessions
must not be allowed to proceed concurrently if one modifies variables
accessed by the other."

A :class:`PersistentState` is a set of named :class:`Region` objects —
key/value stores that outlive sessions. A session declares, per member,
which regions it reads and which it writes; the session manager's
interference check (:mod:`repro.session.interference`) refuses to
schedule conflicting sessions concurrently, and each session touches
state only through :class:`RegionView` objects that enforce the declared
access mode.
"""

from __future__ import annotations

from typing import Any, Iterator

#: Access modes a session may declare on a region.
READ = "r"
WRITE = "rw"
MODES = (READ, WRITE)


class Region:
    """One named partition of a dapplet's persistent state."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._data: dict[str, Any] = {}
        #: Bumped on every mutation; lets checkpoints and tests detect
        #: writes cheaply.
        self.version = 0

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def set(self, key: str, value: Any) -> None:
        self._data[key] = value
        self.version += 1

    def delete(self, key: str) -> None:
        if key in self._data:
            del self._data[key]
            self.version += 1

    def keys(self) -> list[str]:
        return sorted(self._data)

    def items(self) -> Iterator[tuple[str, Any]]:
        return iter(sorted(self._data.items()))

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> dict[str, Any]:
        """A shallow copy (used by checkpointing)."""
        return dict(self._data)

    def restore(self, data: dict[str, Any]) -> None:
        """Replace contents (used by checkpoint recovery)."""
        self._data = dict(data)
        self.version += 1


class RegionView:
    """A session's handle on a region, enforcing its declared mode.

    Reads are always allowed; mutating methods raise ``PermissionError``
    unless the session declared write access.
    """

    def __init__(self, region: Region, mode: str) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self._region = region
        self.mode = mode

    @property
    def name(self) -> str:
        return self._region.name

    @property
    def writable(self) -> bool:
        return self.mode == WRITE

    def get(self, key: str, default: Any = None) -> Any:
        return self._region.get(key, default)

    def keys(self) -> list[str]:
        return self._region.keys()

    def items(self) -> Iterator[tuple[str, Any]]:
        return self._region.items()

    def __contains__(self, key: str) -> bool:
        return key in self._region

    def _require_write(self) -> None:
        if not self.writable:
            raise PermissionError(
                f"session has read-only access to region {self.name!r}")

    def set(self, key: str, value: Any) -> None:
        self._require_write()
        self._region.set(key, value)

    def delete(self, key: str) -> None:
        self._require_write()
        self._region.delete(key)


class PersistentState:
    """The collection of a dapplet's regions."""

    def __init__(self) -> None:
        self._regions: dict[str, Region] = {}

    def region(self, name: str) -> Region:
        """The region called ``name``, created empty on first use."""
        region = self._regions.get(name)
        if region is None:
            region = Region(name)
            self._regions[name] = region
        return region

    def regions(self) -> list[str]:
        return sorted(self._regions)

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Deep-enough copy of all regions (used by checkpointing)."""
        return {name: r.snapshot() for name, r in self._regions.items()}

    def restore(self, data: dict[str, dict[str, Any]]) -> None:
        for name, contents in data.items():
            self.region(name).restore(contents)
