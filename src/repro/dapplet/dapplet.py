"""The ``Dapplet`` base class.

A dapplet is a process with a global address that communicates only
through its ports (inboxes and outboxes). Application dapplets subclass
this, create ports, and react to sessions via the
``on_session_start``/``on_session_end`` hooks; "threads within a
dapplet" are processes started with :meth:`spawn`.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Generator

from repro.dapplet.acl import AccessControlList
from repro.dapplet.state import PersistentState
from repro.errors import DappletError
from repro.mailbox.inbox import Inbox
from repro.mailbox.outbox import Outbox
from repro.net.address import NodeAddress
from repro.net.endpoint import Endpoint
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.session.manager import SessionManager
    from repro.session.session import SessionContext
    from repro.world import World

PortHook = Callable[[object], None]


class Dapplet:
    """Base class for all dapplets.

    Instances are created through :meth:`repro.world.World.dapplet`,
    which allocates the address, registers the dapplet in the world's
    directory, and calls :meth:`setup`.
    """

    #: Directory kind tag; subclasses set this ("calendar", "secretary"...).
    kind: str = ""
    #: Owning :class:`~repro.registry.Principal`, stamped by
    #: ``World.dapplet(..., owner=...)``. ``None`` means unowned — no
    #: capability enforcement applies (the pre-registry behaviour).
    owner = None
    #: Manifest metadata for the DAppStore (see ``docs/REGISTRY.md``):
    #: a free-form schema tag, the RPC methods the dapplet exports, and
    #: the capability verbs a peer must hold to link a session (checked
    #: in addition to ``session.establish``). Subclasses override as
    #: class attributes; ``World.dapplet`` accepts per-instance
    #: ``requires=`` / ``schema=`` / ``exports=`` overrides.
    schema: str = ""
    exports: tuple = ()
    requires: tuple = ()

    def __init__(self, world: "World", address: NodeAddress,
                 name: str) -> None:
        self.world = world
        # The substrate's scheduler half, under its historical name: the
        # same object whether the world runs simulated or on asyncio.
        self.kernel = world.substrate
        self.address = address
        self.name = name
        self.endpoint = Endpoint(world.substrate, world.substrate.datagrams,
                                 address, **world.endpoint_options)
        self.acl = AccessControlList()
        # Worlds with a storage backend give every dapplet a durable,
        # journaled state namespaced by its (unique) name — so a
        # restarted dapplet recovers exactly what its predecessor
        # journaled (see World.restart_dapplet).
        backend = world.backend_for(name)
        if backend is not None:
            from repro.store.durable import DurableState
            self.state = PersistentState(DurableState(
                backend, name=f"dapplet/{name}",
                substrate=world.substrate, node=address))
        else:
            self.state = PersistentState()
        self._inbox_refs = itertools.count()
        self._outbox_refs = itertools.count()
        self.inboxes: dict[int, Inbox] = {}
        self.outboxes: dict[int, Outbox] = {}
        self._named_inboxes: dict[str, Inbox] = {}
        self._processes: list[Process] = []
        #: Called with every newly created Inbox/Outbox; services (e.g.
        #: logical clocks) use this to hook all of a dapplet's ports.
        self.port_hooks: list[PortHook] = []
        self._session_manager: "SessionManager | None" = None
        self._stopped = False
        # The message-passing layer provides every dapplet a logical
        # clock satisfying the global snapshot criterion (paper §4.2).
        from repro.services.clocks.lamport import LamportClock
        self.clock = LamportClock(self)
        # An attached tracer stamps this dapplet's events with its
        # Lamport clock (worlds attach tracers; see repro.obs).
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.register_clock(address, self.clock)
        self.setup()
        # Every dapplet listens for link requests from the moment it is
        # installed (the paper's model: dapplets are installed first,
        # sessions arrive later).
        from repro.session.manager import SessionManager
        self._session_manager = SessionManager(self)

    @property
    def manifest_name(self) -> str:
        """This dapplet's hierarchical DAppStore name.

        ``org/app/instance``: the owner's namespace, the dapplet's
        ``kind`` (``"app"`` when unset), and its world-unique name.
        Unowned dapplets use the ``"_"`` namespace.
        """
        namespace = self.owner.namespace if self.owner is not None else "_"
        return f"{namespace}/{self.kind or 'app'}/{self.name}"

    # -- subclass hooks ---------------------------------------------------

    def setup(self) -> None:
        """Create long-lived ports and state; called once at creation."""

    def main(self) -> "Generator | None":
        """Optional main behaviour; return a generator to run it.

        Started by :meth:`start`. Dapplets that only react to sessions
        do not need one.
        """
        return None

    def on_session_start(self, ctx: "SessionContext") -> "Generator | None":
        """Called when a session this dapplet joined becomes active.

        Returning a generator runs it as this member's session process.
        """
        return None

    def on_session_end(self, ctx: "SessionContext") -> None:
        """Called when a session terminates or this member leaves."""

    # -- ports --------------------------------------------------------------

    def create_inbox(self, name: str | None = None) -> Inbox:
        """A new inbox; optionally addressable by ``name``."""
        self._ensure_live()
        if name is not None and name in self._named_inboxes:
            raise DappletError(
                f"dapplet {self.name!r} already has an inbox named {name!r}")
        ref = next(self._inbox_refs)
        inbox = Inbox(self.kernel, self.endpoint, ref, name=name)
        self.inboxes[ref] = inbox
        if name is not None:
            self._named_inboxes[name] = inbox
        for hook in self.port_hooks:
            hook(inbox)
        return inbox

    def create_outbox(self, *, delivery: str | None = None,
                      skip_timeout: float | None = None) -> Outbox:
        """A new outbox (initially bound to nothing).

        ``delivery`` picks its delivery class (see
        :mod:`repro.net.delivery`); ``None`` inherits the endpoint's
        default. ``skip_timeout`` tunes the RELIABLE_SKIP abandon
        deadline for this outbox's channels.
        """
        self._ensure_live()
        ref = next(self._outbox_refs)
        outbox = Outbox(self.kernel, self.endpoint, ref,
                        delivery=delivery, skip_timeout=skip_timeout)
        self.outboxes[ref] = outbox
        for hook in self.port_hooks:
            hook(outbox)
        return outbox

    def inbox_named(self, name: str) -> Inbox:
        try:
            return self._named_inboxes[name]
        except KeyError:
            raise DappletError(
                f"dapplet {self.name!r} has no inbox named {name!r}") from None

    def close_inbox(self, inbox: Inbox) -> None:
        inbox.close()
        self.inboxes.pop(inbox.ref, None)
        if inbox.name is not None:
            self._named_inboxes.pop(inbox.name, None)

    # -- processes ("threads within a dapplet") ------------------------------

    def spawn(self, body: Generator, name: str | None = None) -> Process:
        """Start a process belonging to this dapplet."""
        self._ensure_live()
        process = self.kernel.process(
            body, name=f"{self.name}/{name or 'proc'}")
        self._processes.append(process)
        return process

    def start(self) -> "Process | None":
        """Start :meth:`main` if the subclass defines one."""
        body = self.main()
        if body is None:
            return None
        return self.spawn(body, name="main")

    # -- sessions -------------------------------------------------------------

    @property
    def sessions(self) -> "SessionManager":
        """This dapplet's session manager (created on first use)."""
        if self._session_manager is None:
            from repro.session.manager import SessionManager
            self._session_manager = SessionManager(self)
        return self._session_manager

    # -- lifecycle --------------------------------------------------------------

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Detach from the network; live processes are left to drain."""
        if self._stopped:
            return
        self._stopped = True
        for inbox in list(self.inboxes.values()):
            inbox.close()
        self.endpoint.close()
        self.world._forget_dapplet(self)

    def _ensure_live(self) -> None:
        if self._stopped:
            raise DappletError(f"dapplet {self.name!r} is stopped")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} @ {self.address}>"
