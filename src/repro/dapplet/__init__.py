"""Dapplets: the paper's process model.

"We coin the phrase *dapplet* to distinguish a process used in a
collaborative distributed application ... A dapplet is a process: it
operates in a single address space ... and it communicates with other
processes through ports. Associated with each dapplet is an Internet
address (i.e. IP address and port id)."

:class:`Dapplet` is the base class applications subclass;
:class:`~repro.dapplet.directory.AddressDirectory` is the initiator's
address book; :class:`~repro.dapplet.acl.AccessControlList` and
:class:`~repro.dapplet.state.PersistentState` support the paper's
session-admission and persistent-state requirements.
"""

from repro.dapplet.acl import AccessControlList
from repro.dapplet.dapplet import Dapplet
from repro.dapplet.directory import AddressDirectory, DirectoryEntry
from repro.dapplet.state import PersistentState, Region, RegionView

__all__ = [
    "AccessControlList",
    "AddressDirectory",
    "Dapplet",
    "DirectoryEntry",
    "PersistentState",
    "Region",
    "RegionView",
]
