"""The address directory.

The paper (Figure 2): "the center director invokes an initiator dapplet
and passes it a directory of addresses (e.g. Internet IP addresses and
ports) of component dapplets that are to be linked together into a
session ... We do not address how this directory is maintained in this
paper."

Accordingly this is a simple in-memory registry: name -> node address
plus a free-form *kind* tag (e.g. ``"calendar"`` or ``"secretary"``) so
initiators can select participants by type. It supports snapshotting to
a plain dict, which is how a directory travels inside messages to an
initiator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError
from repro.net.address import NodeAddress


@dataclass(frozen=True, slots=True)
class DirectoryEntry:
    """One directory row."""

    name: str
    address: NodeAddress
    kind: str = ""


class AddressDirectory:
    """A name -> address registry for session initiators."""

    def __init__(self) -> None:
        self._entries: dict[str, DirectoryEntry] = {}

    def register(self, name: str, address: NodeAddress,
                 kind: str = "") -> None:
        """Add an entry; re-registering a name must keep its address."""
        existing = self._entries.get(name)
        if existing is not None and existing.address != address:
            raise AddressError(
                f"directory name {name!r} already maps to {existing.address}")
        self._entries[name] = DirectoryEntry(name, address, kind)

    def remove(self, name: str) -> None:
        self._entries.pop(name, None)

    def lookup(self, name: str) -> NodeAddress:
        try:
            return self._entries[name].address
        except KeyError:
            raise AddressError(f"no directory entry for {name!r}") from None

    def entry(self, name: str) -> DirectoryEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise AddressError(f"no directory entry for {name!r}") from None

    def names(self, kind: str | None = None) -> list[str]:
        """Registered names, optionally filtered by kind, sorted."""
        return sorted(e.name for e in self._entries.values()
                      if kind is None or e.kind == kind)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def to_dict(self) -> dict[str, dict[str, str]]:
        """Wire-encodable snapshot (name -> {"addr", "kind"})."""
        return {name: {"addr": str(e.address), "kind": e.kind}
                for name, e in self._entries.items()}

    @classmethod
    def from_dict(cls, data: "dict[str, dict[str, str] | str]",
                  ) -> "AddressDirectory":
        """Rebuild from :meth:`to_dict` output.

        Also accepts the historical flat form (name -> ``"host:port"``),
        whose entries rehydrate with an empty kind.
        """
        directory = cls()
        for name, value in data.items():
            if isinstance(value, str):
                directory.register(name, NodeAddress.parse(value))
            else:
                directory.register(name, NodeAddress.parse(value["addr"]),
                                   kind=value.get("kind", ""))
        return directory
