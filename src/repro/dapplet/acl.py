"""Access-control lists.

The paper: a dapplet "may reject the request because the requesting
dapplet was not on its access control list". An ACL decides, given the
requester's node address, whether a link request is admissible. The
default is open (allow everyone); adding the first ``allow`` entry
switches to allow-list mode; ``deny`` entries always win.
"""

from __future__ import annotations

from repro.net.address import NodeAddress


class AccessControlList:
    """Allow/deny decisions on requester node addresses.

    Entries are either exact node addresses or host patterns — a plain
    hostname (matches any port there) or a ``*.domain`` suffix pattern.
    """

    def __init__(self) -> None:
        self._allow: set[str] = set()
        self._deny: set[str] = set()

    @staticmethod
    def _keys(address: NodeAddress) -> list[str]:
        """All pattern keys the address matches, most specific first."""
        keys = [str(address), address.host]
        parts = address.host.split(".")
        for i in range(1, len(parts)):
            keys.append("*." + ".".join(parts[i:]))
        return keys

    def allow(self, pattern: "NodeAddress | str") -> None:
        """Admit requesters matching ``pattern`` (enables allow-list mode)."""
        self._allow.add(str(pattern))

    def deny(self, pattern: "NodeAddress | str") -> None:
        """Refuse requesters matching ``pattern`` (overrides allows)."""
        self._deny.add(str(pattern))

    def clear(self) -> None:
        self._allow.clear()
        self._deny.clear()

    def allows(self, requester: NodeAddress) -> bool:
        """True if a link request from ``requester`` is admissible."""
        keys = self._keys(requester)
        if any(k in self._deny for k in keys):
            return False
        if not self._allow:
            return True
        return any(k in self._allow for k in keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "allow-list" if self._allow else "open"
        return (f"<AccessControlList {mode} allow={sorted(self._allow)} "
                f"deny={sorted(self._deny)}>")
