"""The ``World``: one internetwork of dapplets on a pluggable substrate.

A convenience facade that owns the substrate (scheduler + datagram
service), the address directory, and port allocation — the pieces every
run needs. Everything it does can be assembled by hand from the lower
layers; the examples and benchmarks all start with::

    world = World(seed=1, latency=GeoLatency())
    alice = world.dapplet(CalendarDapplet, "caltech.edu", "alice")
    ...
    world.run()

By default the world runs on the deterministic virtual-time simulator
(:class:`repro.runtime.SimSubstrate`). Pass ``substrate=`` to run the
same dapplets on a different runtime — e.g.
:class:`repro.runtime.AsyncioSubstrate` for real UDP sockets::

    world = World(substrate=AsyncioSubstrate())
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Type, TypeVar

from repro.dapplet.dapplet import Dapplet
from repro.dapplet.directory import AddressDirectory
from repro.errors import DappletError
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.runtime import SimSubstrate, Substrate

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

D = TypeVar("D", bound=Dapplet)

#: First port handed out on each host.
BASE_PORT = 2000


class World:
    """A complete deployment on one substrate.

    Parameters
    ----------
    seed:
        Root seed for all randomness in the run (simulated substrate
        only).
    latency / faults:
        The simulated network's latency model and fault plan (see
        :mod:`repro.net`).
    endpoint_options:
        Keyword arguments applied to every dapplet's transport endpoint
        (e.g. ``rto_initial``, ``max_retries``, ``delivery``).
    encoded:
        Round-trip every simulated datagram through the binary wire
        codec at the network boundary (byte-parity mode; simulated
        substrate only).
    realtime:
        Pace virtual time against the wall clock (for demos).
    substrate:
        An explicit runtime to deploy on; mutually exclusive with the
        simulator-configuration parameters above, which all configure
        the default :class:`~repro.runtime.SimSubstrate`.
    store:
        A :class:`~repro.store.StorageBackend` (shared by every
        dapplet, each under its own ``dapplet/<name>`` namespace) or a
        callable ``name -> backend`` factory (one backend per dapplet —
        what the crash tests use so an injected crash kills exactly one
        dapplet's store). With a store, every dapplet's
        ``PersistentState`` journals mutations through a
        :class:`~repro.store.DurableState`, and
        :meth:`restart_dapplet` can rebuild a crashed dapplet from its
        latest snapshot + WAL.
    tracer:
        An optional :class:`repro.obs.Tracer` recording structured
        events from every layer (see ``docs/OBSERVABILITY.md``). Works
        with either substrate; can also be attached later with
        :meth:`attach_tracer`.
    """

    def __init__(self, seed: int = 0, *,
                 latency: LatencyModel | None = None,
                 faults: FaultPlan | None = None,
                 endpoint_options: dict[str, Any] | None = None,
                 encoded: bool = False,
                 realtime: bool = False,
                 realtime_factor: float = 1.0,
                 substrate: Substrate | None = None,
                 store: Any = None,
                 tracer: "Any | None" = None) -> None:
        if substrate is not None:
            if (seed != 0 or latency is not None or faults is not None
                    or encoded or realtime or realtime_factor != 1.0):
                raise ValueError(
                    "substrate= is mutually exclusive with the simulator "
                    "parameters (seed/latency/faults/encoded/realtime); "
                    "configure the substrate itself instead")
            self.substrate: Substrate = substrate
        else:
            self.substrate = SimSubstrate(
                seed=seed, latency=latency, faults=faults, encoded=encoded,
                realtime=realtime, realtime_factor=realtime_factor)
        self.directory = AddressDirectory()
        self.endpoint_options = dict(endpoint_options or {})
        #: Optional :class:`repro.session.InterferenceMonitor`; when set,
        #: session managers report activations to it and the paper's
        #: exclusion requirement is asserted throughout the run.
        self.interference_monitor = None
        self.store = store
        self._registry = None
        self._dappstore_replicas: list[Dapplet] = []
        self._manifest_config = None
        self._auto_publish = False
        self._backends: dict[str, Any] = {}
        self._next_port: dict[str, int] = {}
        self._dapplets: dict[str, Dapplet] = {}
        #: How each dapplet was built — (cls, host, kwargs) — so
        #: restart_dapplet can rebuild it after a crash.
        self._dapplet_specs: dict[str, tuple[Type[Dapplet], str,
                                             dict[str, Any]]] = {}
        self._directory_replicas: list[Dapplet] = []
        self._lease_config = None
        self._auto_enroll = False
        if tracer is not None:
            self.attach_tracer(tracer)

    # -- observability -----------------------------------------------------

    @property
    def tracer(self):
        """The attached :class:`repro.obs.Tracer`, or ``None``."""
        return self.substrate.tracer

    def attach_tracer(self, tracer: Any) -> Any:
        """Attach ``tracer`` to the substrate and register every
        existing dapplet's logical clock with it (dapplets created later
        register themselves). Returns the tracer."""
        tracer.attach(self.substrate)
        for dapplet in self._dapplets.values():
            tracer.register_clock(dapplet.address, dapplet.clock)
        return tracer

    def export_trace(self, path: Any) -> Any:
        """Export the attached tracer's JSONL trace to ``path``."""
        if self.substrate.tracer is None:
            raise ValueError("no tracer attached to this world")
        return self.substrate.tracer.export_jsonl(path)

    # -- substrate views ---------------------------------------------------

    @property
    def kernel(self) -> Substrate:
        """The scheduler half of the substrate (historical name)."""
        return self.substrate

    @property
    def network(self):
        """The datagram half of the substrate (historical name)."""
        return self.substrate.datagrams

    # -- construction -----------------------------------------------------

    def allocate_port(self, host: str) -> int:
        port = self._next_port.get(host, BASE_PORT)
        self._next_port[host] = port + 1
        return port

    def dapplet(self, cls: Type[D], host: str, name: str,
                **kwargs: Any) -> D:
        """Create a dapplet of ``cls`` on ``host`` and register it.

        ``name`` must be unique in this world; it becomes the dapplet's
        directory name. ``owner=`` stamps the dapplet with its owning
        :class:`~repro.registry.Principal` (registered in this world's
        :attr:`registry`), switching on capability enforcement at its
        session, RPC and token gates; ``requires=`` / ``schema=`` /
        ``exports=`` override the manifest class attributes
        per-instance. Remaining keyword arguments go to the subclass
        constructor; all of them (ownership included) are replayed by
        :meth:`restart_dapplet`.
        """
        if name in self._dapplets:
            raise DappletError(f"a dapplet named {name!r} already exists")
        spec_kwargs = dict(kwargs)
        owner = kwargs.pop("owner", None)
        requires = kwargs.pop("requires", None)
        schema = kwargs.pop("schema", None)
        exports = kwargs.pop("exports", None)
        from repro.net.address import NodeAddress
        address = NodeAddress(host, self.allocate_port(host))
        instance = cls(self, address, name, **kwargs)
        if owner is not None:
            instance.owner = self.registry.principal(
                str(owner), getattr(owner, "org", ""))
        if requires is not None:
            instance.requires = tuple(requires)
        if schema is not None:
            instance.schema = schema
        if exports is not None:
            instance.exports = tuple(exports)
        self._dapplets[name] = instance
        self._dapplet_specs[name] = (cls, host, spec_kwargs)
        self.directory.register(name, address, kind=cls.kind)
        if self._auto_enroll:
            self._enroll_new(instance)
        if self._auto_publish and instance.owner is not None:
            self._publish_new(instance)
        return instance

    # -- multi-tenancy (repro.registry) -------------------------------------

    @property
    def registry(self):
        """This world's capability :class:`~repro.registry.Registry`
        (created on first use). Every enforcement point consults it;
        with no owners and no grants every check short-circuits to the
        pre-registry open behaviour."""
        if self._registry is None:
            from repro.registry import Registry
            self._registry = Registry(self.substrate)
        return self._registry

    def host_dappstore(self, hosts: "int | list[str]" = 3, *,
                       config: Any | None = None,
                       auto_publish: bool = True) -> list[Dapplet]:
        """Deploy N replicated DAppStore catalogs (see ``repro.registry``).

        ``hosts`` is either a replica count (each on its own synthetic
        ``storeN.example.org`` host) or an explicit list of host names.
        The replicas gossip manifests with each other; *owned* dapplets
        already installed are published (given a lease-renewing
        :class:`~repro.registry.PublishAgent`), and — with
        ``auto_publish`` (the default) — so is every owned dapplet
        created afterwards.

        Call once, before :meth:`run`. Returns the replicas.
        """
        from repro.discovery import LeaseConfig
        from repro.registry import DAppStoreReplica
        if self._dappstore_replicas:
            raise DappletError("this world already hosts a DAppStore")
        if isinstance(hosts, int):
            hosts = [f"store{i}.example.org" for i in range(hosts)]
        if not hosts:
            raise DappletError("host_dappstore needs >= 1 host")
        self._manifest_config = config or LeaseConfig()
        existing = self.dapplets()
        for i, host in enumerate(hosts):
            replica = self.dapplet(DAppStoreReplica, host, f"_store{i}",
                                   config=self._manifest_config)
            self._dappstore_replicas.append(replica)
        addresses = self.dappstore_addresses()
        for replica in self._dappstore_replicas:
            replica.set_peers(a for a in addresses if a != replica.address)
        self._auto_publish = auto_publish
        for dapplet in existing:
            if dapplet.owner is not None:
                self._publish_new(dapplet)
        return list(self._dappstore_replicas)

    @property
    def dappstore_replicas(self) -> list[Dapplet]:
        """The store replicas hosted by :meth:`host_dappstore`."""
        return list(self._dappstore_replicas)

    def dappstore_addresses(self) -> list["NodeAddress"]:
        """Node addresses of the hosted DAppStore replicas."""
        return [r.address for r in self._dappstore_replicas]

    def publish(self, dapplet: Dapplet) -> Any:
        """Publish ``dapplet``'s manifest into the hosted DAppStore.

        Attaches a :class:`~repro.registry.PublishAgent` as
        ``dapplet.manifest_agent`` (idempotent) and returns it.
        """
        from repro.registry import PublishAgent
        if not self._dappstore_replicas:
            raise DappletError("no DAppStore hosted; call host_dappstore()")
        agent = getattr(dapplet, "manifest_agent", None)
        if agent is None:
            agent = PublishAgent(dapplet, self.dappstore_addresses(),
                                 config=self._manifest_config)
            dapplet.manifest_agent = agent
        return agent

    def store_client_for(self, dapplet: Dapplet) -> Any:
        """A :class:`~repro.registry.StoreClient` bound to ``dapplet``."""
        from repro.registry import StoreClient
        if not self._dappstore_replicas:
            raise DappletError("no DAppStore hosted; call host_dappstore()")
        return StoreClient(dapplet, self.dappstore_addresses(),
                           config=self._manifest_config)

    def _publish_new(self, dapplet: Dapplet) -> None:
        from repro.registry import DAppStoreReplica
        if isinstance(dapplet, DAppStoreReplica):
            return
        self.publish(dapplet)

    # -- durable state (repro.store) ----------------------------------------

    def backend_for(self, name: str) -> Any:
        """The storage backend for dapplet ``name``, or ``None``.

        With ``store=`` a backend instance, every dapplet shares it
        (namespacing keeps them apart); with a factory, one backend is
        created per dapplet name and *memoized*, so a restarted dapplet
        finds its predecessor's bytes.
        """
        if self.store is None:
            return None
        if not callable(self.store):
            return self.store
        backend = self._backends.get(name)
        if backend is None:
            backend = self._backends[name] = self.store(name)
        return backend

    def restart_dapplet(self, name: str, *,
                        from_checkpoint: int | None = None) -> Dapplet:
        """Rebuild dapplet ``name`` from its durable state.

        Stops the old instance if it is still around (crash semantics:
        in-memory state is gone), re-creates it exactly as it was first
        created — same class, host, and constructor arguments, a fresh
        port — re-registers it in the directory (and, when a replicated
        directory is hosted, re-enrolls it with a fresh lease), and
        lets its ``PersistentState`` recover ``snapshot + valid WAL
        prefix`` from the world's store. Sessions the crash interrupted
        can then simply be re-established against the recovered state.

        With ``from_checkpoint=T``, the state is additionally rolled to
        the durable time-T checkpoint cut that a
        :class:`~repro.services.clocks.CheckpointService` saved (the
        paper's "restart from the global checkpoint at T"); the
        rollback itself is journaled, so the recovery point is durable
        too.
        """
        spec = self._dapplet_specs.get(name)
        if spec is None:
            raise DappletError(f"no dapplet named {name!r} was ever created")
        old = self._dapplets.get(name)
        if old is not None:
            old.stop()
        cls, host, kwargs = spec
        instance = self.dapplet(cls, host, name, **kwargs)
        if from_checkpoint is not None:
            durable = instance.state.durable
            if durable is None:
                raise DappletError(
                    f"dapplet {name!r} has no durable state to restart "
                    "from a checkpoint (give the world a store=)")
            cut = durable.load_object(f"ckpt@{from_checkpoint}")
            if cut is None:
                raise DappletError(
                    f"dapplet {name!r} has no durable checkpoint at "
                    f"T={from_checkpoint}")
            instance.state.restore(cut["state"])
        return instance

    # -- sharded tokens (repro.services.tokens.shard) ----------------------

    def host_token_shards(self, hosts: "int | list[str]",
                          initial: dict[str, int], *,
                          policy: str = "fifo",
                          vnodes: int | None = None) -> Any:
        """Deploy the paper's network of token managers, sharded.

        ``hosts`` is either a shard count (each on its own synthetic
        ``tokN.example.org`` host) or an explicit list of host names;
        one :class:`~repro.services.tokens.TokenShard` manager is
        installed per host, named ``_tokN``, and the colours of
        ``initial`` are spread over them by consistent hashing. Returns
        a :class:`~repro.services.tokens.ShardedTokenService`: call its
        ``attach(dapplet)`` for a plain
        :class:`~repro.services.tokens.TokenAgent` connected to the
        dapplet's home shard. With a hosted directory, shard hosts
        enroll like any dapplet, so agents may instead resolve a
        manager by ring position via
        :func:`~repro.services.tokens.resolve_shard`.
        """
        from repro.services.tokens.shard import (ShardedTokenService,
                                                 ShardRing, TokenShard,
                                                 TokenShardHost, VNODES)
        if isinstance(hosts, int):
            hosts = [f"tok{i}.example.org" for i in range(hosts)]
        if not hosts:
            raise DappletError("host_token_shards needs >= 1 host")
        names = [f"_tok{i}" for i in range(len(hosts))]
        ring = ShardRing(names, vnodes=vnodes or VNODES)
        dapplets = {name: self.dapplet(TokenShardHost, host, name)
                    for name, host in zip(names, hosts)}
        peers = {name: d.address for name, d in dapplets.items()}
        shards = [TokenShard(dapplets[name], ring, name, peers, initial,
                             policy=policy)
                  for name in names]
        return ShardedTokenService(shards, initial)

    # -- replicated discovery (repro.discovery) ----------------------------

    def host_directory(self, hosts: "int | list[str]" = 3, *,
                       config: Any | None = None,
                       auto_enroll: bool = True) -> list[Dapplet]:
        """Deploy N replicated directory dapplets (see ``repro.discovery``).

        ``hosts`` is either a replica count (each on its own synthetic
        ``dirN.example.org`` host) or an explicit list of host names.
        The replicas gossip with each other; dapplets already installed
        are enrolled (given a lease-renewing
        :class:`~repro.discovery.RegistrationAgent`), and — with
        ``auto_enroll`` (the default) — so is every dapplet created
        afterwards. Dapplets exposing ``use_resolver`` (initiators) get
        a :class:`~repro.discovery.Resolver` attached.

        Call once, before :meth:`run`. Returns the replicas.
        """
        from repro.discovery import DirectoryReplica, LeaseConfig
        if self._directory_replicas:
            raise DappletError("this world already hosts a directory")
        if isinstance(hosts, int):
            hosts = [f"dir{i}.example.org" for i in range(hosts)]
        if not hosts:
            raise DappletError("host_directory needs >= 1 host")
        self._lease_config = config or LeaseConfig()
        existing = self.dapplets()
        for i, host in enumerate(hosts):
            replica = self.dapplet(DirectoryReplica, host, f"_dir{i}",
                                   config=self._lease_config)
            self._directory_replicas.append(replica)
        addresses = self.replica_addresses()
        for replica in self._directory_replicas:
            replica.set_peers(a for a in addresses if a != replica.address)
        self._auto_enroll = auto_enroll
        for dapplet in existing:
            self._enroll_new(dapplet)
        return list(self._directory_replicas)

    @property
    def directory_replicas(self) -> list[Dapplet]:
        """The directory replicas hosted by :meth:`host_directory`."""
        return list(self._directory_replicas)

    def replica_addresses(self) -> list["NodeAddress"]:
        """Node addresses of the hosted directory replicas."""
        return [r.address for r in self._directory_replicas]

    def enroll(self, dapplet: Dapplet) -> Any:
        """Give ``dapplet`` a lease in the replicated directory.

        Attaches a :class:`~repro.discovery.RegistrationAgent` as
        ``dapplet.lease_agent`` (idempotent) and returns it.
        """
        from repro.discovery import RegistrationAgent
        if not self._directory_replicas:
            raise DappletError("no directory hosted; call host_directory()")
        agent = getattr(dapplet, "lease_agent", None)
        if agent is None:
            agent = RegistrationAgent(dapplet, self.replica_addresses(),
                                      config=self._lease_config)
            dapplet.lease_agent = agent
        return agent

    def resolver_for(self, dapplet: Dapplet) -> Any:
        """A :class:`~repro.discovery.Resolver` bound to ``dapplet``."""
        from repro.discovery import Resolver
        if not self._directory_replicas:
            raise DappletError("no directory hosted; call host_directory()")
        return Resolver(dapplet, self.replica_addresses(),
                        config=self._lease_config)

    def _enroll_new(self, dapplet: Dapplet) -> None:
        from repro.discovery import DirectoryReplica
        if isinstance(dapplet, DirectoryReplica):
            return
        self.enroll(dapplet)
        if hasattr(dapplet, "use_resolver"):
            dapplet.use_resolver(self.resolver_for(dapplet))

    def _forget_dapplet(self, dapplet: Dapplet) -> None:
        self._dapplets.pop(dapplet.name, None)
        self.directory.remove(dapplet.name)

    def get(self, name: str) -> Dapplet:
        try:
            return self._dapplets[name]
        except KeyError:
            raise DappletError(f"no dapplet named {name!r}") from None

    def dapplets(self) -> list[Dapplet]:
        return [self._dapplets[n] for n in sorted(self._dapplets)]

    # -- running ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.substrate.now

    def run(self, until: "float | Event | None" = None, **kwargs: Any) -> Any:
        """Run the world (see the substrate's ``run`` for semantics).

        Extra keyword arguments are forwarded to the substrate — e.g.
        ``wall_timeout=`` on :class:`~repro.runtime.AsyncioSubstrate`.
        """
        return self.substrate.run(until, **kwargs)

    def process(self, body, name: str | None = None):
        """Start a free-standing process (not owned by any dapplet)."""
        return self.substrate.process(body, name=name)

    def close(self) -> None:
        """Release the substrate's external resources (if any)."""
        self.substrate.close()
