"""The application library.

The paper commits to "implementing a library of applications that
demonstrates the methodology". Three applications, matching the paper's
examples:

* :mod:`repro.apps.calendar` — Example One / Figure 1: meeting
  scheduling by calendar and secretary dapplets, with the traditional
  sequential approach as the baseline.
* :mod:`repro.apps.design` — Example Two: collaborative distributed
  design with change notification, token write-locks and vector-clock
  conflict detection.
* :mod:`repro.apps.cardgame` — the distributed card game the paper uses
  to illustrate predecessor/successor ring topologies, exercising
  session shrinkage and dynamic rewiring.
"""
