"""The distributed card game (the paper's ring example).

"In a distributed card game session, a player dapplet may be linked to
its predecessor and successor player dapplets, which correspond to the
players to its left and right respectively."

The game is hot-potato elimination: the dealer starts a potato with a
random time-to-live; players pass it around the ring, decrementing; the
player holding it at zero is out. The session then *shrinks* — the
loser is unlinked and the ring is rewired around the gap
(:meth:`Session.remove_member` + :meth:`Session.add_bindings`) — and
the next round begins, until one player remains. This exercises exactly
the dynamism the paper claims for sessions: "after initiation, they may
grow and shrink as required by the dapplets".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.dapplet.dapplet import Dapplet
from repro.messages.message import Message, message_type
from repro.session.initiator import Initiator
from repro.session.spec import Binding, SessionSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.session.session import SessionContext

APP = "cardgame.hotpotato"


@message_type("game.potato")
@dataclass(frozen=True)
class Potato(Message):
    ttl: int
    round_no: int


@message_type("game.out")
@dataclass(frozen=True)
class PlayerOut(Message):
    member: str
    round_no: int


@message_type("game.over")
@dataclass(frozen=True)
class GameOver(Message):
    winner: str


def game_spec(players: list[str], dealer: str) -> SessionSpec:
    """Ring of players plus dealer links: reports in, starts out."""
    if len(players) < 2:
        raise ValueError("a game needs at least two players")
    spec = SessionSpec(APP, params={"players": list(players),
                                    "dealer": dealer})
    for player in players:
        spec.add_member(player, inboxes=("in",))
    spec.add_member(dealer, inboxes=("in",))
    n = len(players)
    for i, player in enumerate(players):
        spec.bind(player, "next", players[(i + 1) % n], "in")
        spec.bind(player, "report", dealer, "in")
        spec.bind(dealer, f"to:{player}", player, "in")
    return spec


class PlayerDapplet(Dapplet):
    """Passes the potato; reports when caught holding it at zero."""

    kind = "player"

    def on_session_start(self, ctx: "SessionContext") -> "Generator | None":
        if ctx.app != APP:
            return None
        self.ctx = ctx
        self.potatoes_handled = 0

        def play():
            while ctx.active:
                msg = yield ctx.inbox("in").receive()
                if isinstance(msg, Potato):
                    self.potatoes_handled += 1
                    if msg.ttl <= 0:
                        ctx.outbox("report").send(
                            PlayerOut(ctx.member, msg.round_no))
                    else:
                        ctx.outbox("next").send(
                            Potato(msg.ttl - 1, msg.round_no))
                elif isinstance(msg, GameOver):
                    self.winner_notice = msg.winner

        return play()


class DealerDapplet(Initiator):
    """Runs the tournament: one session, shrinking round by round."""

    kind = "dealer"

    def on_session_start(self, ctx: "SessionContext") -> None:
        if ctx.app == APP:
            self.ctx = ctx
        return None

    def run_game(self, players: list[str],
                 timeout: float = 300.0) -> Generator:
        """Play until one player remains; returns (winner, eliminations).

        A generator — drive it from a process with ``yield from``.
        """
        spec = game_spec(players, dealer=self.name)
        session = yield from self.establish(spec, timeout=timeout)
        standing = list(players)
        eliminated: list[str] = []
        rng = self.world.kernel.rng.get(f"game/{self.name}")
        round_no = 0
        while len(standing) > 1:
            round_no += 1
            ttl = rng.randint(len(standing), 3 * len(standing))
            self.ctx.outbox(f"to:{standing[0]}").send(
                Potato(ttl, round_no))
            # Await the loser's report.
            loser = None
            while loser is None:
                msg = yield self.ctx.inbox("in").receive(timeout=timeout)
                if isinstance(msg, PlayerOut) and msg.round_no == round_no:
                    loser = msg.member
            # Shrink the session and close the ring around the gap.
            i = standing.index(loser)
            pred = standing[i - 1]
            succ = standing[(i + 1) % len(standing)]
            yield from session.remove_member(loser, timeout=timeout)
            eliminated.append(loser)
            standing.remove(loser)
            if len(standing) > 1 and pred != succ:
                yield from session.add_bindings(
                    [Binding(pred, "next", succ, "in")], timeout=timeout)
        winner = standing[0]
        self.ctx.outbox(f"to:{winner}").send(GameOver(winner))
        yield from session.terminate(timeout=timeout)
        return winner, eliminated
