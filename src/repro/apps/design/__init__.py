"""The collaborative distributed design application (Example Two).

"A group of people working at different sites collaborate on the design
of a system. Management of design documents requires that modifications
to parts of the document are communicated to appropriate members of the
design team ... Each member of the design team has a dapplet
responsible for managing that member's part of the design. The
collection of dapplets forms a network — a session — that lasts as long
as the design."

Pieces:

* :class:`DocumentStore` — each member's replica of the design's parts,
  versioned with vector clocks; concurrent edits to a part are detected
  and recorded as conflicts.
* :class:`DesignerDapplet` — joins a mesh session; edits are protected
  by token write-locks (one colour per part) so that, used properly,
  conflicts cannot arise; an unlocked edit path demonstrates the
  detection machinery.
"""

from repro.apps.design.dapplets import APP, DesignerDapplet, design_spec
from repro.apps.design.store import DocumentStore, Part

__all__ = ["APP", "DesignerDapplet", "DocumentStore", "Part", "design_spec"]
