"""Wire messages of the design application."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.messages.message import Message, message_type


@message_type("design.change")
@dataclass(frozen=True)
class ChangeNotice(Message):
    """Broadcast after an edit: new content plus its version vector."""

    part: str
    content: str
    version: dict = field(default_factory=dict)
    author: str = ""


@message_type("design.fetch")
@dataclass(frozen=True)
class FetchRequest(Message):
    part: str
    requester: str = ""


@message_type("design.part")
@dataclass(frozen=True)
class PartState(Message):
    part: str
    content: str
    version: dict = field(default_factory=dict)
    author: str = ""
