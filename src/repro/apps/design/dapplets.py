"""The designer dapplet and the design-session spec."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.apps.design import messages as dm
from repro.apps.design.store import DocumentStore
from repro.dapplet.dapplet import Dapplet
from repro.net.address import InboxAddress
from repro.patterns.topology import mesh_spec
from repro.services.clocks.vector import VectorClock
from repro.services.tokens.manager import TokenAgent

if TYPE_CHECKING:  # pragma: no cover
    from repro.session.session import SessionContext
    from repro.session.spec import SessionSpec

APP = "design.collab"
REGION = "design"


def design_spec(members: list[str], parts: list[str],
                token_coordinator: "InboxAddress | None" = None,
                subscriptions: "dict[str, list[str]] | None" = None,
                ) -> "SessionSpec":
    """A mesh session over the design team.

    ``parts`` names the document parts; if ``token_coordinator`` points
    at a :class:`~repro.services.tokens.TokenCoordinator` hosting one
    token per colour ``part:<name>``, edits take write locks through it.

    ``subscriptions`` maps each member to the parts it cares about (the
    paper: "modifications to parts of the document are communicated to
    *appropriate* members of the design team"). Omitted or per-member
    missing entries mean subscribe-to-everything.
    """
    params: dict = {"parts": list(parts), "members": list(members)}
    if token_coordinator is not None:
        params["token_coordinator"] = token_coordinator
    if subscriptions is not None:
        params["subscriptions"] = {m: list(p)
                                   for m, p in subscriptions.items()}
    return mesh_spec(APP, members, params=params,
                     regions={m: {REGION: "rw"} for m in members})


class DesignerDapplet(Dapplet):
    """One member of the design team."""

    kind = "designer"

    def setup(self) -> None:
        self.store = DocumentStore(self.name)
        self._agent: TokenAgent | None = None
        self.ctx: "SessionContext | None" = None
        self._subscribers: "dict[str, list[str]] | None" = None

    def _notify(self, ctx: "SessionContext", notice: dm.ChangeNotice) -> None:
        """Send a change notice to the appropriate members: the part's
        subscribers when subscriptions were declared, everyone
        otherwise."""
        if self._subscribers is None:
            ctx.outbox("bcast").send(notice)
        else:
            for member in self._subscribers.get(notice.part, ()):
                ctx.outbox(f"to:{member}").send(notice)

    # -- session wiring ---------------------------------------------------

    def on_session_start(self, ctx: "SessionContext") -> "Generator | None":
        if ctx.app != APP:
            return None
        self.ctx = ctx
        coordinator = ctx.params.get("token_coordinator")
        if coordinator is not None and self._agent is None:
            self._agent = TokenAgent(self, coordinator)
        # Who hears about which part: explicit subscriptions, or
        # everyone hears everything (``None`` = broadcast).
        subs: dict[str, list[str]] = ctx.params.get("subscriptions", {})
        self._subscribers: "dict[str, list[str]] | None" = None
        if subs:
            self._subscribers = {}
            for member in ctx.params["members"]:
                if member == ctx.member:
                    continue
                for part in subs.get(member, ctx.params["parts"]):
                    self._subscribers.setdefault(part, []).append(member)
        return self._serve(ctx)

    def on_session_end(self, ctx: "SessionContext") -> None:
        if ctx is self.ctx:
            self.ctx = None

    def _serve(self, ctx: "SessionContext") -> Generator:
        """Apply change notices; answer fetches."""
        while ctx.active:
            msg = yield ctx.inbox("in").receive()
            if isinstance(msg, dm.ChangeNotice):
                self.store.apply_remote(
                    msg.part, msg.content,
                    VectorClock.from_dict(msg.version), msg.author)
            elif isinstance(msg, dm.FetchRequest):
                part = self.store.part(msg.part)
                ctx.outbox(f"to:{msg.requester}").send(dm.PartState(
                    part=msg.part, content=part.content,
                    version=part.version.to_dict(),
                    author=part.last_author))
            elif isinstance(msg, dm.PartState):
                self.store.apply_remote(
                    msg.part, msg.content,
                    VectorClock.from_dict(msg.version), msg.author)

    # -- operations (generators; drive from a process) ------------------------

    def _require_ctx(self) -> "SessionContext":
        if self.ctx is None:
            raise RuntimeError(f"{self.name!r} is not in a design session")
        return self.ctx

    def edit(self, part: str, content: str) -> Generator:
        """A locked edit: write token, edit, broadcast, release.

        With every member editing through here, conflicts are impossible
        — the paper's read/write token protocol in action.
        """
        ctx = self._require_ctx()
        if self._agent is None:
            raise RuntimeError("no token coordinator configured for edits; "
                               "use edit_unlocked or pass token_coordinator")
        color = f"part:{part}"
        yield self._agent.request({color: "all"})
        try:
            # Fetch-before-write would be redundant: holding all tokens
            # of the colour means no concurrent writer exists, and our
            # replica is as fresh as any notice that reached us.
            updated = self.store.edit(part, content)
            self._notify(ctx, dm.ChangeNotice(
                part=part, content=updated.content,
                version=updated.version.to_dict(), author=self.name))
        finally:
            self._agent.release({color: "all"})

    def edit_unlocked(self, part: str, content: str) -> None:
        """An edit without the write lock — concurrent edits possible;
        the vector clocks in notices let every replica detect them."""
        ctx = self._require_ctx()
        updated = self.store.edit(part, content)
        self._notify(ctx, dm.ChangeNotice(
            part=part, content=updated.content,
            version=updated.version.to_dict(), author=self.name))

    def fetch(self, part: str, owner: str) -> None:
        """Ask ``owner`` for its state of ``part`` (reply is applied by
        the session server when it arrives)."""
        ctx = self._require_ctx()
        ctx.outbox(f"to:{owner}").send(dm.FetchRequest(
            part=part, requester=self.name))
