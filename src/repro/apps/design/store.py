"""Per-member replica of the design document."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.services.clocks.vector import VectorClock


@dataclass
class Part:
    """One part of the design, as known at one member."""

    name: str
    content: str = ""
    version: VectorClock = field(default_factory=VectorClock)
    last_author: str = ""


@dataclass(frozen=True)
class Conflict:
    """A detected pair of concurrent edits to one part."""

    part: str
    local_author: str
    remote_author: str


class DocumentStore:
    """All parts of the design, from one member's perspective."""

    def __init__(self, member: str) -> None:
        self.member = member
        self._parts: dict[str, Part] = {}
        self.conflicts: list[Conflict] = []
        self.notices_applied = 0
        self.notices_stale = 0

    def part(self, name: str) -> Part:
        p = self._parts.get(name)
        if p is None:
            p = Part(name)
            self._parts[name] = p
        return p

    def parts(self) -> list[str]:
        return sorted(self._parts)

    def edit(self, name: str, content: str) -> Part:
        """A local edit: bump our component of the part's version."""
        p = self.part(name)
        p.content = content
        p.version = p.version.tick(self.member)
        p.last_author = self.member
        return p

    def apply_remote(self, name: str, content: str,
                     version: VectorClock, author: str) -> bool:
        """Merge a change notice; returns True if it advanced the part.

        A remote version concurrent with ours (neither saw the other's
        edit) is a conflict: recorded, then resolved deterministically
        in favour of the lexicographically smaller author so replicas
        converge either way.
        """
        p = self.part(name)
        if version == p.version or version.happens_before(p.version):
            self.notices_stale += 1
            return False
        if p.version.happens_before(version):
            p.content = content
            p.version = version
            p.last_author = author
            self.notices_applied += 1
            return True
        # Concurrent edits.
        self.conflicts.append(Conflict(
            part=name, local_author=p.last_author or self.member,
            remote_author=author))
        merged = p.version.merge(version)
        if author < (p.last_author or self.member):
            p.content = content
            p.last_author = author
        p.version = merged
        self.notices_applied += 1
        return True
