"""A decentralized ring scheduler — the same task, another pattern.

The paper (§2.1): "Several algorithms (cf. [4]) can be used to solve
this problem", and (§2.2) the patterns claim: changing the collaboration
pattern should not change the sequential parts. This module schedules a
meeting **without a secretary**: the members form a ring; an
intersection token starts with the full day range and each member
intersects it with their free days (the same sequential part the
secretary algorithms use); after one lap the initiating member knows the
common days, books the earliest on a second lap, and reports to the
director.

Costs one ring lap per phase: latency ~ sum of link delays (vs. the
star's 2x the worst link), but no coordinator and N fewer messages per
phase — the classic star/ring trade-off, measurable against E1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.apps.calendar import messages as cm
from repro.apps.calendar import state as cs
from repro.messages.message import Message, message_type
from repro.patterns.topology import ring_spec
from repro.session.spec import SessionSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.calendar.dapplets import MeetingDirector
    from repro.session.session import SessionContext

RING_APP = "calendar.ring"


@message_type("cal.ring_intersect")
@dataclass(frozen=True)
class RingIntersect(Message):
    """The availability token: days still common, hops remaining."""

    days: tuple = ()
    hops: int = 0


@message_type("cal.ring_book")
@dataclass(frozen=True)
class RingBook(Message):
    day: int
    label: str
    hops: int = 0


def ring_schedule_spec(members: list[str], director: str,
                       *, horizon: int, label: str = "meeting",
                       ) -> SessionSpec:
    """Ring of calendar members; the first member reports to the
    director."""
    spec = ring_spec(RING_APP, members,
                     params={"members": list(members), "horizon": horizon,
                             "label": label, "director": director,
                             "first": members[0]})
    for m in members:
        spec.members[m].regions = {cs.REGION: "rw"}
    spec.add_member(director, inboxes=("in",))
    spec.bind(members[0], "report", director, "in")
    return spec


def ring_member_process(ctx: "SessionContext") -> Generator:
    """The per-member behaviour (installed by CalendarDapplet)."""
    view = ctx.region(cs.REGION)
    horizon: int = ctx.params["horizon"]
    label: str = ctx.params["label"]
    n = len(ctx.params["members"])
    is_first = ctx.member == ctx.params["first"]

    if is_first:
        # Lap 1: start the intersection token with our own free days.
        mine = tuple(cs.free_days(view, horizon))
        ctx.outbox("next").send(RingIntersect(days=mine, hops=n - 1))

    while ctx.active:
        msg = yield ctx.inbox("in").receive()
        if isinstance(msg, RingIntersect):
            if msg.hops > 0:
                # The sequential part: intersect with my free days.
                common = tuple(d for d in msg.days
                               if cs._busy_key(d) not in view)
                ctx.outbox("next").send(
                    RingIntersect(days=common, hops=msg.hops - 1))
            else:
                # Back at the first member: lap 1 complete.
                if msg.days:
                    day = min(msg.days)
                    cs.book(view, day, label)
                    ctx.outbox("next").send(
                        RingBook(day=day, label=label, hops=n - 1))
                else:
                    ctx.outbox("report").send(cm.MeetingScheduled(
                        day=-1, algorithm="ring", rounds=1))
        elif isinstance(msg, RingBook):
            if msg.hops > 0:
                cs.book(view, msg.day, msg.label)
                ctx.outbox("next").send(
                    RingBook(day=msg.day, label=msg.label,
                             hops=msg.hops - 1))
            else:
                # Lap 2 complete; everyone is booked.
                ctx.outbox("report").send(cm.MeetingScheduled(
                    day=msg.day, algorithm="ring", rounds=2))


def ring_schedule(director: "MeetingDirector", members: list[str],
                  *, horizon: int = 10, label: str = "meeting",
                  timeout: float = 120.0) -> Generator:
    """Run one ring-scheduling session; returns a
    :class:`~repro.apps.calendar.driver.ScheduleOutcome`."""
    from repro.apps.calendar.driver import ScheduleOutcome

    if len(members) < 2:
        raise ValueError("ring scheduling needs at least two members")
    world = director.world
    spec = ring_schedule_spec(members, director.name,
                              horizon=horizon, label=label)
    started = world.now
    datagrams_before = world.network.stats.sent
    session = yield from director.establish(spec, timeout=timeout)
    report = yield director.last_ctx.inbox("in").receive(timeout=timeout)
    elapsed = world.now - started
    yield from session.terminate(timeout=timeout)
    assert isinstance(report, cm.MeetingScheduled)
    return ScheduleOutcome(
        day=report.day, algorithm="ring", rounds=report.rounds,
        elapsed=elapsed,
        datagrams=world.network.stats.sent - datagrams_before)
