"""One-call driver for a scheduling session.

Builds the Figure 1 star (secretary hub, calendar members, plus the
director as a member to receive the report), establishes it, waits for
the outcome, and terminates the session — "when this task is achieved,
the session terminates".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.apps.calendar import messages as cm
from repro.apps.calendar.dapplets import APP, MeetingDirector
from repro.apps.calendar.state import REGION
from repro.patterns.topology import star_spec

if TYPE_CHECKING:  # pragma: no cover
    pass


@dataclass
class ScheduleOutcome:
    """What a scheduling session produced, with cost accounting."""

    day: int  # -1 when no common day was found
    algorithm: str
    rounds: int
    elapsed: float  # virtual seconds, establishment through report
    datagrams: int  # network datagrams attributable to the session
    place: str = ""  # chosen meeting place, when places were offered

    @property
    def scheduled(self) -> bool:
        return self.day >= 0


def schedule_meeting(director: MeetingDirector, secretary: str,
                     members: list[str], *, horizon: int = 10,
                     algorithm: str = "session", label: str = "meeting",
                     candidates: int = 3, max_approvals: int = 0,
                     places: "tuple[str, ...] | list[str]" = (),
                     timeout: float = 120.0) -> Generator:
    """Run one complete scheduling session (generator; ``yield from``).

    ``members`` are directory names of calendar dapplets; ``secretary``
    the directory name of a secretary dapplet. Returns a
    :class:`ScheduleOutcome`.
    """
    world = director.world
    spec = star_spec(
        APP, secretary, list(members) + [director.name],
        params={
            "coordinator": secretary,
            "members": list(members),
            "director": director.name,
            "horizon": horizon,
            "algorithm": algorithm,
            "label": label,
            "candidates": candidates,
            "max_approvals": max_approvals,
            "places": tuple(places),
        },
        regions={m: {REGION: "rw"} for m in members})
    started = world.now
    datagrams_before = world.network.stats.sent
    session = yield from director.establish(spec, timeout=timeout)
    report = yield director.last_ctx.inbox("in").receive(timeout=timeout)
    elapsed = world.now - started
    yield from session.terminate(timeout=timeout)
    datagrams = world.network.stats.sent - datagrams_before
    assert isinstance(report, cm.MeetingScheduled)
    return ScheduleOutcome(day=report.day, algorithm=report.algorithm,
                           rounds=report.rounds, elapsed=elapsed,
                           datagrams=datagrams, place=report.place)
