"""Wire messages of the calendar application."""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.message import Message, message_type


@message_type("cal.query_free")
@dataclass(frozen=True)
class QueryFree(Message):
    """Which of days ``0..horizon-1`` are you free?"""

    horizon: int


@message_type("cal.free")
@dataclass(frozen=True)
class FreeDays(Message):
    days: tuple = ()


@message_type("cal.vote_request")
@dataclass(frozen=True)
class VoteRequest(Message):
    """Approve or reject each candidate day."""

    candidates: tuple = ()


@message_type("cal.place_vote_request")
@dataclass(frozen=True)
class PlaceVoteRequest(Message):
    """Approve or reject each candidate meeting place."""

    places: tuple = ()


@message_type("cal.place_vote")
@dataclass(frozen=True)
class PlaceVote(Message):
    approved: tuple = ()


@message_type("cal.vote")
@dataclass(frozen=True)
class Vote(Message):
    approved: tuple = ()


@message_type("cal.book")
@dataclass(frozen=True)
class Book(Message):
    day: int
    label: str = "meeting"


@message_type("cal.book_ack")
@dataclass(frozen=True)
class BookAck(Message):
    day: int
    ok: bool


@message_type("cal.scheduled")
@dataclass(frozen=True)
class MeetingScheduled(Message):
    """The secretary's report to the director.

    The paper's task is to "pick a date **and place**" — ``place`` is
    empty when the session did not put places on the table.
    """

    day: int  # -1 when no common day exists
    algorithm: str
    rounds: int
    place: str = ""
