"""The calendar, secretary and director dapplets."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.apps.calendar import messages as cm
from repro.apps.calendar import state as cs
from repro.dapplet.dapplet import Dapplet
from repro.messages.message import Message
from repro.patterns.coordinator import CoordinatorRounds, participant_loop
from repro.session.initiator import Initiator

if TYPE_CHECKING:  # pragma: no cover
    from repro.session.session import SessionContext

APP = "calendar.meeting"


class CalendarDapplet(Dapplet):
    """Manages one committee member's persistent calendar.

    In a scheduling session it is a participant: the sequential part
    (the paper's point) is just :meth:`handle` — queries, votes and
    bookings against the member's calendar region.
    """

    kind = "calendar"

    def on_session_start(self, ctx: "SessionContext") -> "Generator | None":
        from repro.apps.calendar.ring import RING_APP, ring_member_process
        if ctx.app == RING_APP:
            return ring_member_process(ctx)
        if ctx.app != APP or ctx.member == ctx.params.get("coordinator"):
            return None
        view = ctx.region(cs.REGION)
        label = ctx.params.get("label", "meeting")
        max_approvals = ctx.params.get("max_approvals", 0)

        def handle(body: Message) -> "Message | None":
            if isinstance(body, cm.QueryFree):
                return cm.FreeDays(tuple(cs.free_days(view, body.horizon)))
            if isinstance(body, cm.VoteRequest):
                free = [d for d in body.candidates
                        if cs._busy_key(d) not in view]
                if max_approvals:
                    free = free[:max_approvals]
                return cm.Vote(tuple(free))
            if isinstance(body, cm.PlaceVoteRequest):
                return cm.PlaceVote(tuple(
                    cs.acceptable_places(view, body.places)))
            if isinstance(body, cm.Book):
                return cm.BookAck(body.day, cs.book(view, body.day, label))
            return None

        return participant_loop(ctx, handle)


class SecretaryDapplet(Dapplet):
    """The coordinating secretary of Figure 1.

    Runs the scheduling algorithm named in the session parameters as its
    session process and reports the outcome to the director member.
    """

    kind = "secretary"

    def on_session_start(self, ctx: "SessionContext") -> "Generator | None":
        if ctx.app != APP or ctx.params.get("coordinator") != ctx.member:
            return None
        return self._coordinate(ctx)

    def _coordinate(self, ctx: "SessionContext") -> Generator:
        members: list[str] = list(ctx.params["members"])
        horizon: int = ctx.params["horizon"]
        algorithm: str = ctx.params.get("algorithm", "session")
        label: str = ctx.params.get("label", "meeting")
        coordinator = CoordinatorRounds(ctx, members)
        sequential = algorithm == "traditional"
        rounds = 0

        def scatter(make):
            nonlocal rounds
            rounds += 1
            if sequential:
                return coordinator.sequential_round(make)
            return coordinator.round(make)

        # Phase 1: availability.
        replies = yield from scatter(lambda m: cm.QueryFree(horizon))
        common = set(range(horizon))
        for reply in replies.values():
            if isinstance(reply, cm.FreeDays):
                common &= set(reply.days)

        # Phase 2 (negotiated only): candidates are approved or rejected.
        if algorithm == "negotiated" and common:
            k = ctx.params.get("candidates", 3)
            candidates = tuple(sorted(common)[:k])
            votes = yield from scatter(
                lambda m: cm.VoteRequest(candidates))
            tally = {day: 0 for day in candidates}
            for reply in votes.values():
                if isinstance(reply, cm.Vote):
                    for day in reply.approved:
                        if day in tally:
                            tally[day] += 1
            # Most approvals, earliest day breaking ties.
            common = {max(candidates,
                          key=lambda d: (tally[d], -d))} if candidates else set()

        # Phase 3: book, retrying if a member's calendar drifted.
        day = -1
        while common:
            candidate = min(common)
            acks = yield from scatter(lambda m: cm.Book(candidate, label))
            if all(isinstance(a, cm.BookAck) and a.ok
                   for a in acks.values()) and len(acks) == len(members):
                day = candidate
                break
            common.discard(candidate)

        # Phase 4 (optional): pick the place — "a date and place for a
        # meeting". Majority approval, ties broken lexicographically.
        place = ""
        places = tuple(ctx.params.get("places", ()))
        if day >= 0 and places:
            votes = yield from scatter(
                lambda m: cm.PlaceVoteRequest(places))
            tally = {p: 0 for p in places}
            for reply in votes.values():
                if isinstance(reply, cm.PlaceVote):
                    for p in reply.approved:
                        if p in tally:
                            tally[p] += 1
            # Most approvals; ties go to the alphabetically first place.
            place = min(places, key=lambda p: (-tally[p], p))

        ctx.outbox(f"to:{ctx.params['director']}").send(
            cm.MeetingScheduled(day=day, algorithm=algorithm,
                                rounds=rounds, place=place))
        return day


class MeetingDirector(Initiator):
    """The center director: an initiator that also joins the session to
    receive the secretary's report."""

    kind = "director"

    def on_session_start(self, ctx: "SessionContext") -> None:
        from repro.apps.calendar.ring import RING_APP
        if ctx.app in (APP, RING_APP):
            self.last_ctx = ctx
        return None
