"""The calendar application (the paper's Example One, Figure 1).

"Each member of the committee has a calendar process — a dapplet —
responsible for managing that member's calendar ... The dapplets are
composed together into a temporary network of dapplets that we call a
session. The task of the session is to arrange a common meeting time.
When this task is achieved, the session terminates."

Pieces:

* :class:`CalendarDapplet` — manages one member's persistent calendar
  (region ``"calendar"``); in a session it answers availability
  queries, votes on candidates, and books meetings.
* :class:`SecretaryDapplet` — the coordinating secretary of Figure 1;
  its session process runs one of the scheduling algorithms.
* :class:`MeetingDirector` — the initiator (the "center director"): it
  builds the session from the address directory, joins it to receive
  the outcome, and tears it down when the meeting is scheduled.
* :func:`schedule_meeting` — one-call driver used by examples, tests
  and benchmarks.

Scheduling algorithms (the paper: "several algorithms can be used"):

* ``"session"`` — the paper's proposal: parallel query of all members,
  intersection at the secretary, parallel booking. One WAN round trip
  per phase.
* ``"traditional"`` — the baseline the paper's introduction describes:
  "the director, or someone on the staff, calls each member of the
  committee repeatedly, and negotiates with each one in turn". One
  round trip per member per phase, serialized.
* ``"negotiated"`` — the variant sketched in Example One: the secretary
  suggests "a set of candidate dates that can then be approved or
  rejected by the members"; the most-approved candidate is booked.
"""

from repro.apps.calendar.dapplets import (
    CalendarDapplet,
    MeetingDirector,
    SecretaryDapplet,
)
from repro.apps.calendar.driver import ScheduleOutcome, schedule_meeting
from repro.apps.calendar.ring import ring_schedule
from repro.apps.calendar.state import busy_days, free_days, load_calendar

__all__ = [
    "CalendarDapplet",
    "MeetingDirector",
    "ScheduleOutcome",
    "SecretaryDapplet",
    "busy_days",
    "free_days",
    "load_calendar",
    "ring_schedule",
    "schedule_meeting",
]
