"""Calendar state helpers.

A member's appointments calendar lives in the persistent-state region
``"calendar"`` of their dapplet (the paper: "an appointments calendar
that disappears when an appointment is made has no value"). Days are
integers ``0..horizon-1``; a busy day is a key ``"busy:<day>"`` whose
value is the appointment label.
"""

from __future__ import annotations

from typing import Iterable

from repro.dapplet.state import PersistentState, Region, RegionView

REGION = "calendar"


def _busy_key(day: int) -> str:
    return f"busy:{day}"


def load_calendar(state: PersistentState,
                  busy: Iterable[int] | dict[int, str]) -> None:
    """Seed a dapplet's calendar with busy days (pre-session setup)."""
    region = state.region(REGION)
    if isinstance(busy, dict):
        for day, label in busy.items():
            region.set(_busy_key(day), label)
    else:
        for day in busy:
            region.set(_busy_key(day), "busy")


def busy_days(view: "Region | RegionView", horizon: int) -> list[int]:
    return [d for d in range(horizon) if _busy_key(d) in view]


def free_days(view: "Region | RegionView", horizon: int) -> list[int]:
    return [d for d in range(horizon) if _busy_key(d) not in view]


def book(view: RegionView, day: int, label: str) -> bool:
    """Book ``day``; False if it is already taken."""
    if _busy_key(day) in view:
        return False
    view.set(_busy_key(day), label)
    return True


def set_place_preferences(state: PersistentState,
                          avoid: Iterable[str]) -> None:
    """Record places this member will vote against (e.g. too far)."""
    region = state.region(REGION)
    for place in avoid:
        region.set(f"avoid_place:{place}", True)


def acceptable_places(view: "Region | RegionView",
                      places: Iterable[str]) -> list[str]:
    """The subset of ``places`` this member would approve."""
    return [p for p in places if f"avoid_place:{p}" not in view]
