"""Leases: the unit of truth in the replicated directory.

The paper punts on directory maintenance ("We do not address how this
directory is maintained in this paper"); this subsystem's answer is the
classic one — a registration is not a fact but a **lease**: a claim with
a time-to-live that the owning dapplet must keep renewing. A silent
dapplet's lease runs out and every replica's failure detector turns it
into a tombstone, so lookups stop returning the dead without anyone ever
announcing the death.

Each lease carries a **version stamp** ``(epoch, version)``:

* ``epoch`` increments on every (re-)registration — the granting replica
  picks ``max(known epoch, agent's hint) + 1``, so a dapplet that fails
  over to another replica supersedes its old lease everywhere once
  gossip spreads the new epoch;
* ``version`` increments on every renewal, expiry or unregistration
  within an epoch.

Anti-entropy gossip merges replicas' stores by last-writer-wins on the
stamp (:meth:`LeaseRecord.stamp`; a tombstone outranks a live record
with the same stamp, so a detected death is never un-detected by a tie).
Expiry deadlines travel as *remaining* TTL (:meth:`LeaseRecord.to_wire`)
rather than absolute times, so replicas never compare each other's
clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DiscoveryError
from repro.net.address import NodeAddress


@dataclass(frozen=True, slots=True)
class LeaseConfig:
    """Timing knobs shared by replicas, agents and resolvers.

    All values are in substrate seconds (virtual on the simulator, real
    on asyncio). The defaults keep a comfortable margin between the
    lease TTL and the renewal heartbeat plus worst-case gossip lag, so a
    *live* dapplet is never spuriously expired by a replica that only
    hears about it second-hand.
    """

    #: Lifetime granted per registration or renewal.
    ttl: float = 4.0
    #: Heartbeat period of the owning dapplet's registration agent.
    renew_interval: float = 1.0
    #: Period of each replica's failure-detector sweep.
    sweep_interval: float = 0.5
    #: Period of anti-entropy gossip (one peer per round, round-robin).
    gossip_interval: float = 1.0
    #: How long an expired/unregistered entry is remembered as a
    #: tombstone (so gossip spreads the death instead of resurrecting
    #: the entry from a replica that has not noticed yet).
    tombstone_ttl: float = 30.0
    #: Resolver-side cache lifetime (further bounded by the remaining
    #: lease TTL the answering replica reports). 0 disables caching.
    cache_ttl: float = 1.0
    #: How long agents and resolvers wait for a replica's reply before
    #: failing over to the next replica.
    request_timeout: float = 1.0

    def __post_init__(self) -> None:
        for field in ("ttl", "sweep_interval", "gossip_interval",
                      "tombstone_ttl", "request_timeout"):
            if getattr(self, field) <= 0:
                raise DiscoveryError(f"LeaseConfig.{field} must be > 0")
        if not 0 < self.renew_interval < self.ttl:
            raise DiscoveryError(
                "LeaseConfig.renew_interval must be positive and smaller "
                f"than ttl ({self.renew_interval} vs {self.ttl})")
        if self.cache_ttl < 0:
            raise DiscoveryError("LeaseConfig.cache_ttl must be >= 0")

    def staleness_bound(self, replicas: int = 1) -> float:
        """Worst-case time a dead dapplet can still resolve.

        Its lease outlives the last renewal by ``ttl``; a replica that
        only hears of renewals via gossip lags a further gossip round
        per intermediate peer; the failure-detector sweep adds at most
        one period; and a resolver may serve the entry from cache for
        ``cache_ttl`` more. The E14 benchmark measures the real window
        against this bound.
        """
        return (self.ttl + max(0, replicas - 1) * self.gossip_interval
                + self.sweep_interval + self.cache_ttl)


@dataclass(frozen=True, slots=True)
class LeaseRecord:
    """One version-stamped directory row held by a replica.

    ``expires_at`` is *local* substrate time: the instant this replica's
    failure detector will declare the lease dead (or, for a tombstone,
    forget it entirely).
    """

    name: str
    address: NodeAddress
    kind: str
    epoch: int
    version: int
    alive: bool
    expires_at: float

    @property
    def stamp(self) -> tuple[int, int, int]:
        """Last-writer-wins ordering key.

        Higher epoch beats lower; within an epoch higher version beats
        lower; at an identical ``(epoch, version)`` a tombstone beats a
        live record — two replicas can expire the same lease at the same
        version independently, and a detected death must win ties.
        """
        return (self.epoch, self.version, 0 if self.alive else 1)

    def live_at(self, now: float) -> bool:
        return self.alive and self.expires_at > now

    def expired(self, now: float, *, tombstone_ttl: float) -> "LeaseRecord":
        """The tombstone this record becomes when its lease runs out."""
        return replace(self, version=self.version + 1, alive=False,
                       expires_at=now + tombstone_ttl)

    # -- wire form (inside gossip messages) -----------------------------

    def to_wire(self, now: float) -> dict:
        """Encode with a *relative* remaining TTL (clock-skew tolerant)."""
        return {"n": self.name, "a": str(self.address), "k": self.kind,
                "e": self.epoch, "v": self.version, "al": self.alive,
                "tl": self.expires_at - now}

    @classmethod
    def from_wire(cls, data: dict, now: float) -> "LeaseRecord":
        return cls(name=data["n"], address=NodeAddress.parse(data["a"]),
                   kind=data["k"], epoch=int(data["e"]),
                   version=int(data["v"]), alive=bool(data["al"]),
                   expires_at=now + float(data["tl"]))


def merge(existing: "LeaseRecord | None",
          incoming: LeaseRecord) -> "LeaseRecord | None":
    """The record a replica should keep after seeing ``incoming``.

    Returns ``None`` when ``existing`` already covers it (no store
    write). Last-writer-wins on :attr:`LeaseRecord.stamp`; at equal
    stamps the later local expiry is kept, so gossip can only ever
    *extend* knowledge of a lease, never roll it back.
    """
    if existing is None or incoming.stamp > existing.stamp:
        return incoming
    if incoming.stamp == existing.stamp \
            and incoming.expires_at > existing.expires_at:
        return replace(existing, expires_at=incoming.expires_at)
    return None
