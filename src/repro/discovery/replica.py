"""The directory replica dapplet.

The directory of Figure 2, reimagined as a replicated service: each
:class:`DirectoryReplica` is an ordinary dapplet speaking the discovery
protocol over the reliable transport on its well-known ``_directory``
inbox, so the directory itself survives host loss and sits at WAN
distances from its clients — on either substrate.

Each replica runs three processes:

* a **server** answering registrations, renewals, unregistrations and
  lookups (:mod:`repro.discovery.messages`);
* a **failure detector** sweeping the store every
  ``sweep_interval`` and tombstoning leases whose TTL ran out — this is
  what makes ``lookup`` stop returning a dapplet that died silently;
* a **gossiper** pushing its full version-stamped store to one peer per
  ``gossip_interval`` (round-robin over the sorted peer ring) with a
  pull-back reply, so replicas reconcile divergence in a bounded number
  of rounds and any replica can answer any lookup.

Every state change emits a typed ``dir`` trace event (see
``docs/DISCOVERY.md`` for the schema); on the simulated substrate the
whole protocol is deterministic, so repeated runs produce byte-identical
traces.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable

from repro.dapplet.dapplet import Dapplet
from repro.discovery import messages as dm
from repro.discovery.lease import LeaseConfig, LeaseRecord, merge
from repro.mailbox.outbox import Outbox
from repro.net.address import InboxAddress, NodeAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.world import World

#: Well-known inbox name every replica serves the protocol on.
DIRECTORY_INBOX = "_directory"


@dataclass
class ReplicaStats:
    """Protocol counters for one replica (all monotonic)."""

    grants: int = 0
    renewals: int = 0
    denials: int = 0
    unregisters: int = 0
    expiries: int = 0
    lookups: int = 0
    lookup_hits: int = 0
    gossip_rounds: int = 0
    gossip_merged: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(vars(self))


class DirectoryReplica(Dapplet):
    """One replica of the distributed address directory."""

    kind = "directory"

    def __init__(self, world: "World", address: NodeAddress, name: str,
                 *, config: LeaseConfig | None = None,
                 peers: Iterable[NodeAddress] = ()) -> None:
        # setup() runs inside Dapplet.__init__, so configuration must be
        # in place first.
        self.config = config or LeaseConfig()
        self._initial_peers = tuple(peers)
        super().__init__(world, address, name)

    def setup(self) -> None:
        #: name -> newest known :class:`LeaseRecord` (live or tombstone).
        self.store: dict[str, LeaseRecord] = {}
        self.stats = ReplicaStats()
        self._peer_ring: list[NodeAddress] = []
        self._gossip_ix = 0
        self._gossiping = False
        self._outboxes: dict[InboxAddress, Outbox] = {}
        self.inbox = self.create_inbox(name=DIRECTORY_INBOX)
        self.spawn(self._serve(), name="dir-serve")
        self.spawn(self._sweep_loop(), name="dir-sweep")
        if self._initial_peers:
            self.set_peers(self._initial_peers)

    # -- wiring ----------------------------------------------------------

    def set_peers(self, peers: Iterable[NodeAddress]) -> None:
        """Set the replica ring this replica gossips with.

        Sorted, so the round-robin peer choice is deterministic
        regardless of construction order. Starts the gossip process on
        first use.
        """
        self._peer_ring = sorted(set(peers))
        if self._peer_ring and not self._gossiping:
            self._gossiping = True
            self.spawn(self._gossip_loop(), name="dir-gossip")

    @property
    def peers(self) -> tuple[NodeAddress, ...]:
        return tuple(self._peer_ring)

    # -- views (used by tests, benchmarks and the sweep) -----------------

    def live_entries(self) -> dict[str, tuple[NodeAddress, str]]:
        """The names this replica would currently resolve, with kinds."""
        now = self.kernel.now
        return {name: (r.address, r.kind)
                for name, r in sorted(self.store.items()) if r.live_at(now)}

    def names(self, kind: str | None = None) -> list[str]:
        """Live names, optionally filtered by kind, sorted."""
        now = self.kernel.now
        return sorted(r.name for r in self.store.values()
                      if r.live_at(now) and (kind is None or r.kind == kind))

    # -- server ----------------------------------------------------------

    def _serve(self):
        while True:
            msg = yield self.inbox.receive()
            if isinstance(msg, dm.Register):
                self._on_register(msg)
            elif isinstance(msg, dm.Renew):
                self._on_renew(msg)
            elif isinstance(msg, dm.Unregister):
                self._on_unregister(msg)
            elif isinstance(msg, dm.LookupRequest):
                self._on_lookup(msg)
            elif isinstance(msg, dm.GossipSync):
                self._on_gossip(msg)

    def _send(self, to: InboxAddress, message) -> None:
        outbox = self._outboxes.get(to)
        if outbox is None:
            outbox = self._bind_outbox(to)
        result = outbox.send(message)
        if any(r.is_failed for r in result.receipts):
            # The channel broke (e.g. a partition outlived the
            # transport's retry budget). Rebind on a fresh channel and
            # retry once; periodic traffic heals the rest.
            self.outboxes.pop(outbox.ref, None)
            del self._outboxes[to]
            self._bind_outbox(to).send(message)

    def _bind_outbox(self, to: InboxAddress) -> Outbox:
        outbox = self.create_outbox()
        outbox.add(to)
        self._outboxes[to] = outbox
        return outbox

    # -- lease maintenance ------------------------------------------------

    def _on_register(self, msg: dm.Register) -> None:
        now = self.kernel.now
        existing = self.store.get(msg.name)
        if existing is not None and existing.live_at(now) \
                and existing.address != msg.address:
            self.stats.denials += 1
            self._trace("lease_denied", lease=msg.name, reason="name-taken")
            self._send(msg.reply_to,
                       dm.LeaseDenied(msg.req_id, msg.name, "name-taken"))
            return
        epoch = max(existing.epoch if existing is not None else 0,
                    msg.epoch_hint) + 1
        self.store[msg.name] = LeaseRecord(
            msg.name, msg.address, msg.kind, epoch, 0, True,
            now + self.config.ttl)
        self.stats.grants += 1
        self._trace("lease_grant", lease=msg.name, epoch=epoch)
        self._send(msg.reply_to, dm.LeaseGrant(
            msg.req_id, msg.name, epoch, 0, self.config.ttl))

    def _on_renew(self, msg: dm.Renew) -> None:
        now = self.kernel.now
        existing = self.store.get(msg.name)
        if existing is None or not existing.alive \
                or existing.epoch != msg.epoch:
            reason = "unknown" if existing is None else "stale-epoch"
            self.stats.denials += 1
            self._trace("lease_denied", lease=msg.name, reason=reason)
            self._send(msg.reply_to,
                       dm.LeaseDenied(msg.req_id, msg.name, reason))
            return
        record = replace(existing, version=existing.version + 1,
                         expires_at=now + self.config.ttl)
        self.store[msg.name] = record
        self.stats.renewals += 1
        self._trace("lease_renew", lease=msg.name, epoch=record.epoch,
                    version=record.version)
        self._send(msg.reply_to, dm.LeaseGrant(
            msg.req_id, msg.name, record.epoch, record.version,
            self.config.ttl))

    def _on_unregister(self, msg: dm.Unregister) -> None:
        existing = self.store.get(msg.name)
        if existing is None or not existing.alive \
                or existing.epoch != msg.epoch:
            return
        self.store[msg.name] = existing.expired(
            self.kernel.now, tombstone_ttl=self.config.tombstone_ttl)
        self.stats.unregisters += 1
        self._trace("unregister", lease=msg.name, epoch=msg.epoch)

    # -- resolution --------------------------------------------------------

    def _on_lookup(self, msg: dm.LookupRequest) -> None:
        now = self.kernel.now
        record = self.store.get(msg.name)
        self.stats.lookups += 1
        if record is not None and record.live_at(now):
            self.stats.lookup_hits += 1
            self._send(msg.reply_to, dm.LookupReply(
                msg.req_id, msg.name, True, record.address, record.kind,
                record.expires_at - now, record.epoch))
        else:
            self._send(msg.reply_to, dm.LookupReply(
                msg.req_id, msg.name, False, None, "", 0.0, 0))

    # -- failure detector ---------------------------------------------------

    def _sweep_loop(self):
        while True:
            yield self.kernel.timeout(self.config.sweep_interval)
            if self.stopped:
                return
            self.sweep()

    def sweep(self) -> int:
        """Expire overdue leases; drop overdue tombstones. Returns the
        number of leases expired (the failure detector's detections)."""
        now = self.kernel.now
        expired = 0
        for name, record in list(self.store.items()):
            if record.alive and record.expires_at <= now:
                self.store[name] = record.expired(
                    now, tombstone_ttl=self.config.tombstone_ttl)
                self.stats.expiries += 1
                expired += 1
                self._trace("expire", lease=name, epoch=record.epoch)
            elif not record.alive and record.expires_at <= now:
                del self.store[name]
        return expired

    # -- anti-entropy gossip -------------------------------------------------

    def _gossip_loop(self):
        while True:
            yield self.kernel.timeout(self.config.gossip_interval)
            if self.stopped:
                return
            if not self._peer_ring or not self.store:
                continue
            peer = self._peer_ring[self._gossip_ix % len(self._peer_ring)]
            self._gossip_ix += 1
            now = self.kernel.now
            entries = tuple(r.to_wire(now)
                            for _, r in sorted(self.store.items()))
            self.stats.gossip_rounds += 1
            self._send(InboxAddress(peer, DIRECTORY_INBOX),
                       dm.GossipSync(self.address, entries, True))

    def _on_gossip(self, msg: dm.GossipSync) -> None:
        now = self.kernel.now
        merged = 0
        seen: dict[str, tuple[int, int, int]] = {}
        for data in msg.entries:
            incoming = LeaseRecord.from_wire(data, now)
            seen[incoming.name] = incoming.stamp
            updated = merge(self.store.get(incoming.name), incoming)
            if updated is not None:
                self.store[incoming.name] = updated
                merged += 1
        self.stats.gossip_merged += merged
        self._trace("gossip_sync", peer=str(msg.origin),
                    received=len(msg.entries), merged=merged)
        if msg.want_reply:
            fresher = tuple(
                r.to_wire(now) for name, r in sorted(self.store.items())
                if name not in seen or r.stamp > seen[name])
            if fresher:
                self._send(InboxAddress(msg.origin, DIRECTORY_INBOX),
                           dm.GossipSync(self.address, fresher, False))

    # -- plumbing -----------------------------------------------------------

    def _trace(self, event: str, **fields) -> None:
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("dir", event, node=self.address, **fields)
