"""The registration agent: a dapplet's lease-keeping sidecar.

A :class:`RegistrationAgent` owns one dapplet's presence in the
replicated directory. It registers the dapplet's name with one replica
(chosen deterministically by a hash of the name, spreading load across
the ring), then heartbeats a :class:`~repro.discovery.messages.Renew`
every ``renew_interval``. When the chosen replica stops answering it
**fails over** to the next replica and re-registers with a higher epoch
hint, so the new lease supersedes the old one everywhere once gossip
spreads it.

When the owning dapplet stops — or dies silently — the heartbeats stop
with it, the lease runs out, and every replica's failure detector turns
it into a tombstone: exactly the liveness story the paper's static
directory lacks. A graceful shutdown can call :meth:`deregister` to
tombstone the lease immediately instead of waiting out the TTL.
"""

from __future__ import annotations

import itertools
import zlib
from typing import TYPE_CHECKING, Sequence

from repro.discovery import messages as dm
from repro.discovery.lease import LeaseConfig
from repro.discovery.replica import DIRECTORY_INBOX
from repro.errors import AddressError, DiscoveryError, ReceiveTimeout
from repro.net.address import InboxAddress, NodeAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet


class RegistrationAgent:
    """Keeps one dapplet's lease alive in the replicated directory."""

    def __init__(self, dapplet: "Dapplet", replicas: Sequence[NodeAddress],
                 *, config: LeaseConfig | None = None,
                 kind: str | None = None, name: str | None = None) -> None:
        if not replicas:
            raise DiscoveryError("RegistrationAgent needs >= 1 replica")
        self.dapplet = dapplet
        self.kernel = dapplet.kernel
        self.config = config or LeaseConfig()
        self.replicas = tuple(replicas)
        self.kind = dapplet.kind if kind is None else kind
        self.name = dapplet.name if name is None else name
        # Deterministic load spreading: same name -> same home replica,
        # independent of construction order or interpreter hashing.
        self._ix = zlib.crc32(self.name.encode()) % len(self.replicas)
        self.epoch = 0
        self.renewals = 0
        self.failovers = 0
        self._req_ids = itertools.count(1)
        self._done = False
        self.inbox = dapplet.create_inbox()
        self._outbox = dapplet.create_outbox()
        self._outbox.add(self._replica_inbox())
        #: Fires (with the granting replica's address) after the first
        #: successful registration.
        self.registered = self.kernel.event()
        self.process = dapplet.spawn(self._run(), name="lease-agent")

    @property
    def replica(self) -> NodeAddress:
        """The replica currently holding this agent's lease."""
        return self.replicas[self._ix % len(self.replicas)]

    def deregister(self) -> None:
        """Tombstone the lease now instead of waiting out the TTL.

        Fire-and-forget: safe to call right before ``stop()``.
        """
        if self._done:
            return
        self._done = True
        if self.epoch and not self.dapplet.stopped:
            try:
                self._outbox.send(dm.Unregister(self.name, self.epoch))
            except AddressError:
                pass

    # -- the agent process -------------------------------------------------

    def _run(self):
        granted = yield from self._register()
        if granted:
            yield from self._heartbeat()

    def _register(self):
        """Acquire a lease, failing over between replicas until one
        grants it. Returns True on success, False if halted first."""
        while not self._halted():
            req_id = next(self._req_ids)
            try:
                self._outbox.send(dm.Register(
                    req_id, self.name, self.dapplet.address, self.kind,
                    self.inbox.address, epoch_hint=self.epoch))
            except AddressError:
                return False
            reply = yield from self._await_reply(req_id)
            if self._halted():
                return False
            if isinstance(reply, dm.LeaseGrant):
                self.epoch = reply.epoch
                if not self.registered.triggered:
                    self.registered.succeed(self.replica)
                self._trace("register", epoch=reply.epoch)
                return True
            if isinstance(reply, dm.LeaseDenied) \
                    and reply.reason == "name-taken":
                # A previous holder's lease is still live (typically our
                # own, pre-failover, at a stale address). It stops being
                # renewed, so it expires within one TTL: wait and retry.
                yield self.kernel.timeout(self.config.renew_interval)
                continue
            if reply is None:
                self._failover()
        return False

    def _heartbeat(self):
        while True:
            yield self.kernel.timeout(self.config.renew_interval)
            if self._halted():
                return
            req_id = next(self._req_ids)
            try:
                self._outbox.send(dm.Renew(
                    req_id, self.name, self.epoch, self.inbox.address))
            except AddressError:
                return
            reply = yield from self._await_reply(req_id)
            if self._halted():
                return
            if isinstance(reply, dm.LeaseGrant):
                self.renewals += 1
                continue
            if reply is None:
                self._failover()
            # Denied (the replica lost or superseded our lease) or timed
            # out: either way the fix is a fresh registration.
            if not (yield from self._register()):
                return

    def _await_reply(self, req_id: int):
        """The grant/denial matching ``req_id``, or None on timeout."""
        deadline = self.kernel.now + self.config.request_timeout
        while True:
            remaining = deadline - self.kernel.now
            if remaining <= 0:
                return None
            try:
                msg = yield self.inbox.receive(timeout=remaining)
            except (ReceiveTimeout, AddressError):
                return None
            if isinstance(msg, (dm.LeaseGrant, dm.LeaseDenied)) \
                    and msg.req_id == req_id:
                return msg
            # A stale reply from a replica we already failed away from.

    # -- failover ----------------------------------------------------------

    def _failover(self) -> None:
        old = self._replica_inbox()
        self._ix += 1
        self.failovers += 1
        self._outbox.delete(old)
        self._outbox.add(self._replica_inbox())
        self._trace("failover", role="agent", to=str(self.replica))

    def _halted(self) -> bool:
        return self._done or self.dapplet.stopped

    def _replica_inbox(self) -> InboxAddress:
        return InboxAddress(self.replica, DIRECTORY_INBOX)

    def _trace(self, event: str, **fields) -> None:
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("dir", event, node=self.dapplet.address,
                    lease=self.name, **fields)
