"""Distributed discovery: replicated directory dapplets.

The paper's session model hinges on "a directory of addresses ... of
component dapplets" but explicitly leaves its maintenance open. This
subsystem is that answer, built *on top of* the dapplet/channel layer it
serves: the directory is a set of :class:`DirectoryReplica` dapplets;
registrations are leases renewed by a per-dapplet
:class:`RegistrationAgent`; replicas reconcile via anti-entropy gossip;
and clients resolve names through a caching, failover-capable
:class:`Resolver`. See ``docs/DISCOVERY.md`` for the protocol.
"""

from repro.discovery.agent import RegistrationAgent
from repro.discovery.lease import LeaseConfig, LeaseRecord, merge
from repro.discovery.replica import (DIRECTORY_INBOX, DirectoryReplica,
                                     ReplicaStats)
from repro.discovery.resolver import Resolver, ResolverStats

__all__ = [
    "DIRECTORY_INBOX",
    "DirectoryReplica",
    "LeaseConfig",
    "LeaseRecord",
    "RegistrationAgent",
    "ReplicaStats",
    "Resolver",
    "ResolverStats",
    "merge",
]
