"""Wire messages of the discovery protocol.

Three conversations share the replicas' well-known ``_directory`` inbox:

* **lease maintenance** — an owning dapplet's agent sends
  :class:`Register` / :class:`Renew` / :class:`Unregister`; the replica
  answers :class:`LeaseGrant` or :class:`LeaseDenied`;
* **resolution** — a resolver sends :class:`LookupRequest` and gets a
  :class:`LookupReply`;
* **anti-entropy** — replicas exchange :class:`GossipSync` carrying
  version-stamped lease entries (:meth:`repro.discovery.lease.
  LeaseRecord.to_wire`).

Requests carry a ``req_id`` echoed by the reply so clients that failed
over mid-request can discard answers from a slow earlier replica.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.message import Message, message_type
from repro.net.address import InboxAddress, NodeAddress


@message_type("dir.register")
@dataclass(frozen=True)
class Register(Message):
    """Claim (or re-claim) a name; replied with a grant or denial."""

    req_id: int
    name: str
    address: NodeAddress
    kind: str
    reply_to: InboxAddress
    #: Highest epoch the agent has held; the replica grants a higher
    #: one, so a re-registration supersedes the old lease everywhere.
    epoch_hint: int = 0


@message_type("dir.renew")
@dataclass(frozen=True)
class Renew(Message):
    """Heartbeat extending the lease of ``name`` under ``epoch``."""

    req_id: int
    name: str
    epoch: int
    reply_to: InboxAddress


@message_type("dir.unregister")
@dataclass(frozen=True)
class Unregister(Message):
    """Graceful departure: tombstone the lease immediately (no reply)."""

    name: str
    epoch: int


@message_type("dir.lease_grant")
@dataclass(frozen=True)
class LeaseGrant(Message):
    """A lease is (still) held: valid for ``ttl`` from receipt."""

    req_id: int
    name: str
    epoch: int
    version: int
    ttl: float


@message_type("dir.lease_denied")
@dataclass(frozen=True)
class LeaseDenied(Message):
    """Registration/renewal refused.

    ``reason`` is machine-readable: ``"name-taken"`` (a live lease at a
    different address exists), ``"stale-epoch"`` (the renewal's epoch
    was superseded — re-register), or ``"unknown"`` (renewing a name
    this replica has no record of — re-register).
    """

    req_id: int
    name: str
    reason: str


@message_type("dir.lookup")
@dataclass(frozen=True)
class LookupRequest(Message):
    """Resolve ``name`` to its registered address."""

    req_id: int
    name: str
    reply_to: InboxAddress


@message_type("dir.lookup_reply")
@dataclass(frozen=True)
class LookupReply(Message):
    """Answer to a :class:`LookupRequest`.

    ``found`` is False when the name has no *live* lease here (never
    registered, expired, or unregistered). ``ttl_left`` bounds how long
    the caller may cache the answer.
    """

    req_id: int
    name: str
    found: bool
    address: NodeAddress | None
    kind: str
    ttl_left: float
    epoch: int


@message_type("dir.gossip")
@dataclass(frozen=True)
class GossipSync(Message):
    """One anti-entropy exchange between replicas.

    ``entries`` is a tuple of wire-encoded lease records. With
    ``want_reply`` the receiver answers with every record it holds that
    is strictly newer than (or absent from) what it was sent —
    push-pull, so one round reconciles both directions.
    """

    origin: NodeAddress
    entries: tuple
    want_reply: bool
