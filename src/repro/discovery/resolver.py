"""The client-side resolver: cached, failover-capable name lookup.

A :class:`Resolver` is the discovery subsystem's read path. It asks a
directory replica to resolve a name, caches the answer for
``min(cache_ttl, remaining lease TTL)`` — so a cached entry can never
outlive the lease it was derived from by more than ``cache_ttl`` — and
rotates to the next replica whenever the current one stops answering.
A *negative* answer from a live replica is authoritative: the name's
lease has expired (or never existed) and :meth:`resolve` raises
:class:`~repro.errors.LeaseExpired` so callers skip the dead participant
instead of hanging on it.

``resolve`` is a generator — call it from a process body::

    address = yield from resolver.resolve("calendar-alice")
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.discovery import messages as dm
from repro.discovery.lease import LeaseConfig
from repro.discovery.replica import DIRECTORY_INBOX
from repro.errors import (AddressError, DiscoveryError, LeaseExpired,
                          ReceiveTimeout)
from repro.net.address import InboxAddress, NodeAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet


@dataclass
class ResolverStats:
    """Counters for one resolver (all monotonic)."""

    hits: int = 0
    misses: int = 0
    resolves: int = 0
    failures: int = 0
    failovers: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(vars(self))


class Resolver:
    """Resolves names against the directory replicas, with caching."""

    def __init__(self, dapplet: "Dapplet", replicas: Sequence[NodeAddress],
                 *, config: LeaseConfig | None = None) -> None:
        if not replicas:
            raise DiscoveryError("Resolver needs >= 1 replica")
        self.dapplet = dapplet
        self.kernel = dapplet.kernel
        self.config = config or LeaseConfig()
        self.replicas = tuple(replicas)
        self.stats = ResolverStats()
        self._ix = 0
        self._req_ids = itertools.count(1)
        #: name -> (address, kind, fresh_until)
        self._cache: dict[str, tuple[NodeAddress, str, float]] = {}
        self.inbox = dapplet.create_inbox()
        self._outbox = dapplet.create_outbox()
        self._outbox.add(self._replica_inbox())

    @property
    def replica(self) -> NodeAddress:
        """The replica lookups currently go to."""
        return self.replicas[self._ix % len(self.replicas)]

    def invalidate(self, name: str | None = None) -> None:
        """Drop one cached entry, or all of them."""
        if name is None:
            self._cache.clear()
        else:
            self._cache.pop(name, None)

    # -- lookup ------------------------------------------------------------

    def resolve(self, name: str):
        """Resolve ``name`` to its registered :class:`NodeAddress`.

        A generator (``yield from`` it). Raises
        :class:`~repro.errors.LeaseExpired` when a replica answers that
        no live lease exists, or :class:`~repro.errors.DiscoveryError`
        when every replica failed to answer.
        """
        address, _ = yield from self._resolve_entry(name)
        return address

    def resolve_kind(self, name: str):
        """Like :meth:`resolve` but returns ``(address, kind)``."""
        return (yield from self._resolve_entry(name))

    def _resolve_entry(self, name: str):
        now = self.kernel.now
        cached = self._cache.get(name)
        if cached is not None and cached[2] > now:
            self.stats.hits += 1
            self._trace("cache_hit", lease=name)
            return cached[0], cached[1]
        self.stats.misses += 1
        self._trace("cache_miss", lease=name)
        t0 = now
        for _ in range(len(self.replicas)):
            req_id = next(self._req_ids)
            try:
                self._outbox.send(dm.LookupRequest(
                    req_id, name, self.inbox.address))
            except AddressError:
                break
            reply = yield from self._await_reply(req_id)
            if reply is None:
                self._failover()
                continue
            if not reply.found:
                self.stats.failures += 1
                self._trace("resolve_miss", lease=name)
                raise LeaseExpired(
                    f"no live lease for {name!r}: the dapplet is dead, "
                    "expired, or was never registered", name=name)
            now = self.kernel.now
            fresh_until = now + min(self.config.cache_ttl, reply.ttl_left)
            self._cache[name] = (reply.address, reply.kind, fresh_until)
            self.stats.resolves += 1
            self._trace("resolve", lease=name, rlat=now - t0)
            return reply.address, reply.kind
        self.stats.failures += 1
        raise DiscoveryError(
            f"could not resolve {name!r}: no directory replica answered "
            f"within {self.config.request_timeout}s each "
            f"(tried {len(self.replicas)})")

    def _await_reply(self, req_id: int):
        deadline = self.kernel.now + self.config.request_timeout
        while True:
            remaining = deadline - self.kernel.now
            if remaining <= 0:
                return None
            try:
                msg = yield self.inbox.receive(timeout=remaining)
            except (ReceiveTimeout, AddressError):
                return None
            if isinstance(msg, dm.LookupReply) and msg.req_id == req_id:
                return msg
            # Stale reply from a replica we already failed away from.

    # -- failover ----------------------------------------------------------

    def _failover(self) -> None:
        old = self._replica_inbox()
        self._ix += 1
        self.stats.failovers += 1
        self._outbox.delete(old)
        self._outbox.add(self._replica_inbox())
        self._trace("failover", role="resolver", to=str(self.replica))

    def _replica_inbox(self) -> InboxAddress:
        return InboxAddress(self.replica, DIRECTORY_INBOX)

    def _trace(self, event: str, **fields) -> None:
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("dir", event, node=self.dapplet.address, **fields)
