"""Sessions: temporary networks of dapplets.

The paper (§1): "Dapplets are composed together to form distributed
*sessions*. A session is a temporary network of dapplets that carries
out a task ... Sessions need not be static: after initiation, they may
grow and shrink as required by the dapplets."

The pieces:

* :class:`SessionSpec` — the initiator's description of the network to
  build: members, each member's session ports and state regions, and
  the outbox→inbox bindings (Figure 1's arrowed lines).
* :class:`Initiator` — a dapplet that executes the two-phase link-up
  protocol of Figure 2 (prepare/accept → commit/ready), with abort on
  rejection, and owns the session afterwards (grow, shrink, terminate).
* :class:`SessionManager` — the servlet every dapplet runs; checks the
  access-control list and session interference, builds ports, and hands
  the application a :class:`SessionContext`.
* :mod:`repro.session.interference` — the region-conflict relation and
  an execution monitor asserting the paper's mutual-exclusion
  requirement.
"""

from repro.session.initiator import Initiator
from repro.session.interference import InterferenceMonitor, regions_conflict
from repro.session.manager import SessionManager
from repro.session.session import Session, SessionContext
from repro.session.spec import Binding, MemberSpec, SessionSpec

__all__ = [
    "Binding",
    "Initiator",
    "InterferenceMonitor",
    "MemberSpec",
    "Session",
    "SessionContext",
    "SessionManager",
    "SessionSpec",
    "regions_conflict",
]
