"""Session objects.

Two views of one session:

* :class:`SessionContext` — a *member's* view: the session ports this
  dapplet created, region views with the declared access modes, and the
  parameters the initiator committed. Handed to
  ``Dapplet.on_session_start``.
* :class:`Session` — the *initiator's* handle: membership, growth and
  shrinkage, and termination. Its mutating methods are generators; run
  them from a process with ``yield from``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.dapplet.state import RegionView
from repro.errors import SessionError
from repro.mailbox.inbox import Inbox
from repro.mailbox.outbox import Outbox
from repro.net.address import InboxAddress
from repro.session.spec import Binding, MemberSpec, SessionSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet
    from repro.session.initiator import Initiator


class SessionContext:
    """One member's runtime view of an active session."""

    def __init__(self, dapplet: "Dapplet", session_id: str, app: str,
                 member: str, params: dict[str, Any],
                 inboxes: dict[str, Inbox],
                 regions: dict[str, str]) -> None:
        self.dapplet = dapplet
        self.session_id = session_id
        self.app = app
        self.member = member
        self.params = dict(params)
        self._inboxes = inboxes
        self._outboxes: dict[str, Outbox] = {}
        self._region_views = {
            name: RegionView(dapplet.state.region(name), mode)
            for name, mode in regions.items()}
        self.regions = dict(regions)
        self.active = False
        self.process = None  # the member's session process, if any

    # -- ports ----------------------------------------------------------

    def inbox(self, name: str) -> Inbox:
        """The session inbox declared as ``name`` in the spec."""
        try:
            return self._inboxes[name]
        except KeyError:
            raise SessionError(
                f"member {self.member!r} of session {self.session_id!r} "
                f"has no inbox {name!r}") from None

    def outbox(self, name: str) -> Outbox:
        """The session outbox ``name`` (exists once bindings use it)."""
        try:
            return self._outboxes[name]
        except KeyError:
            raise SessionError(
                f"member {self.member!r} of session {self.session_id!r} "
                f"has no outbox {name!r}") from None

    def inbox_names(self) -> list[str]:
        return sorted(self._inboxes)

    def outbox_names(self) -> list[str]:
        return sorted(self._outboxes)

    # -- state ------------------------------------------------------------

    def region(self, name: str) -> RegionView:
        """The member's view of a declared region (mode-enforced)."""
        try:
            return self._region_views[name]
        except KeyError:
            raise SessionError(
                f"session {self.session_id!r} did not declare access to "
                f"region {name!r} for member {self.member!r}") from None

    # -- membership ----------------------------------------------------------

    def leave(self, reason: str = "") -> None:
        """Unilaterally leave the session (the paper's shrinking).

        Tears down this member's ports immediately and sends a courtesy
        :class:`~repro.session.messages.Leave` notice to the initiator;
        orderly shrinkage (removing the channels that point here) is the
        initiator's job via :meth:`Session.remove_member`.
        """
        self.dapplet.sessions._member_leave(self, reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "ended"
        return (f"<SessionContext {self.session_id!r} member={self.member!r} "
                f"{state}>")


class Session:
    """The initiator's handle on an established session."""

    def __init__(self, initiator: "Initiator", spec: SessionSpec,
                 session_id: str,
                 ports: dict[str, dict[str, InboxAddress]]) -> None:
        self.initiator = initiator
        self.spec = spec
        self.session_id = session_id
        #: member -> {port name -> global inbox address}
        self.ports = ports
        self.members: set[str] = set(ports)
        self.terminated = False
        self.created_at = initiator.kernel.now

    # -- growth and shrinkage ------------------------------------------------

    def add_member(self, member_spec: MemberSpec,
                   bindings: list[Binding],
                   timeout: float = 30.0) -> Generator:
        """Grow the session by one member (generator; ``yield from`` it).

        ``bindings`` may connect the new member in either direction;
        channels from existing members are added with ``BindAdd``.
        """
        return self.initiator._grow(self, member_spec, bindings, timeout)

    def remove_member(self, member: str, timeout: float = 30.0) -> Generator:
        """Shrink the session: unlink ``member`` and remove channels to it."""
        return self.initiator._shrink(self, member, timeout)

    def add_bindings(self, bindings: list[Binding],
                     timeout: float = 30.0) -> Generator:
        """Add channels between existing members (generator; acked).

        Used to rewire a session dynamically — e.g. closing a ring
        around a departed member.
        """
        return self.initiator._add_bindings(self, bindings, timeout)

    def terminate(self, timeout: float = 30.0) -> Generator:
        """End the session: every member unlinks (generator)."""
        return self.initiator._terminate(self, timeout)

    def port(self, member: str, name: str) -> InboxAddress:
        """Global address of ``member``'s session inbox ``name``."""
        try:
            return self.ports[member][name]
        except KeyError:
            raise SessionError(
                f"session {self.session_id!r} has no port "
                f"{member!r}/{name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "terminated" if self.terminated else "active"
        return (f"<Session {self.session_id!r} app={self.spec.app!r} "
                f"members={sorted(self.members)} {state}>")
