"""The initiator dapplet.

Figure 2 of the paper: "An initiator uses the invoker's address
directory to set up a session between existing dapplets." The initiator
resolves each member's node address from the directory, runs the
two-phase link-up (prepare/accept, then commit/ready), aborts cleanly if
any member rejects, and afterwards owns the session: it can grow it,
shrink it, and terminate it ("when a session terminates, component
dapplets unlink themselves from each other").

All protocol steps are generators: run them from a process, e.g.::

    def director():
        session = yield from initiator.establish(spec)
        ...
        yield from session.terminate()
"""

from __future__ import annotations

import itertools
from typing import Generator

from repro.dapplet.dapplet import Dapplet
from repro.errors import (ReceiveTimeout, ReproError, SessionError,
                          SessionRejected)
from repro.mailbox.inbox import Inbox
from repro.mailbox.outbox import Outbox
from repro.net.address import InboxAddress, NodeAddress
from repro.net.delivery import RELIABLE
from repro.session import messages as sm
from repro.session.manager import CONTROL_INBOX
from repro.session.session import Session
from repro.session.spec import Binding, MemberSpec, SessionSpec


class _Record:
    """Initiator-side state for one live session."""

    def __init__(self, control: Inbox) -> None:
        self.control = control
        self.member_outboxes: dict[str, Outbox] = {}
        self.member_addresses: dict[str, NodeAddress] = {}
        self.departed: set[str] = set()
        #: Control messages received while waiting for something else;
        #: later waits consult these before the inbox.
        self.strays: list = []


class Initiator(Dapplet):
    """A dapplet that sets up and administers sessions."""

    kind = "initiator"

    def setup(self) -> None:
        self._session_ids = itertools.count(1)
        self._records: dict[str, _Record] = {}
        #: Optional :class:`repro.discovery.Resolver`; when set, member
        #: names resolve through the replicated directory (with caching
        #: and failover) instead of the world's static dict.
        self.resolver = None

    def use_resolver(self, resolver) -> None:
        """Resolve member names through ``resolver`` from now on."""
        self.resolver = resolver

    @property
    def _principal(self) -> str:
        """The owning principal every Prepare is stamped with ("" when
        this initiator is unowned — the pre-registry open mode)."""
        return self.owner.name if self.owner is not None else ""

    def _resolve_address(self, mspec: MemberSpec) -> Generator:
        """One member's node address: explicit > resolver > static dict.

        A generator (the resolver may need a network round-trip). With a
        resolver attached, a dead participant surfaces as
        :class:`~repro.errors.LeaseExpired` — the caller should drop or
        replace that member rather than time out against silence.
        """
        if mspec.address is not None:
            return mspec.address
        if self.resolver is not None:
            return (yield from self.resolver.resolve(mspec.directory_name))
        return self.world.directory.lookup(mspec.directory_name)

    # -- establishment ------------------------------------------------------

    def establish(self, spec: SessionSpec, timeout: float = 30.0,
                  *, wait_for_regions: bool = False) -> Generator:
        """Run the link-up protocol; returns the :class:`Session`.

        Raises :class:`SessionRejected` if any member rejects (carrying
        the reason: the paper's ``"acl"`` or ``"interference"``, or
        ``"capability:<verb>"`` when an owned member's registry check
        denied the initiating principal), or
        :class:`SessionError` if replies time out. On failure every
        member that accepted receives an abort, so no dapplet is left
        half-linked.

        With ``wait_for_regions=True``, members *queue* an interfering
        prepare instead of rejecting it and accept once the conflicting
        sessions end (FIFO per member) — the scheduling reading of the
        paper's exclusion requirement. Pick ``timeout`` generously: the
        wait counts against it. Note the classic hazard of waiting
        instead of rejecting: two establishments queued at each other's
        members can deadlock; the timeout (followed by the automatic
        abort, which releases everything) is the recovery mechanism, so
        never wait without one.
        """
        spec.validate()
        spec = _copy_spec(spec)
        session_id = f"{self.name}#s{next(self._session_ids)}"
        control = self.create_inbox(name=f"_ctl:{session_id}")
        record = _Record(control)
        self._records[session_id] = record
        deadline = self.kernel.now + timeout

        # Resolve every member before preparing any: a dead or
        # unresolvable participant aborts the establishment up front,
        # with no dapplet left half-linked.
        try:
            for member, mspec in spec.members.items():
                record.member_addresses[member] = \
                    yield from self._resolve_address(mspec)
        except ReproError:
            self._dispose(session_id)
            raise

        # Phase 1: prepare.
        for member, mspec in spec.members.items():
            address = record.member_addresses[member]
            outbox = self.create_outbox()
            outbox.add(InboxAddress(address, CONTROL_INBOX))
            record.member_outboxes[member] = outbox
            outbox.send(sm.Prepare(
                session_id=session_id, app=spec.app, member=member,
                initiator=self.address, reply_to=control.named_address,
                inboxes=mspec.inboxes, regions=dict(mspec.regions),
                queue=wait_for_regions, principal=self._principal))

        ports: dict[str, dict[str, InboxAddress]] = {}
        rejection: sm.Reject | None = None
        awaiting = set(spec.members)
        while awaiting and rejection is None:
            msg = yield from self._await_matching(
                record, deadline,
                lambda m: isinstance(m, (sm.Accept, sm.Reject))
                and m.member in awaiting)
            if msg is None:
                break  # timed out
            awaiting.discard(msg.member)
            if isinstance(msg, sm.Accept):
                ports[msg.member] = dict(msg.ports)
            else:
                rejection = msg

        if rejection is not None or awaiting:
            # Abort goes to every member, not just those that accepted:
            # a slow member may accept after we give up, and per-channel
            # FIFO guarantees its manager sees Prepare before Abort, so
            # the abort always cleans up. Aborting a rejector is a
            # no-op (it never created an entry).
            for member in spec.members:
                record.member_outboxes[member].send(
                    sm.Abort(session_id, member))
            self._dispose(session_id)
            if rejection is not None:
                raise SessionRejected(
                    f"member {rejection.member!r} rejected session "
                    f"{session_id!r}: {rejection.reason}",
                    participant=rejection.member, reason=rejection.reason)
            raise SessionError(
                f"session {session_id!r}: no reply from {sorted(awaiting)} "
                f"within {timeout}s")

        # Phase 2: commit with resolved bindings.
        for member in spec.members:
            outbox_map = _resolve_outboxes(spec, member, ports)
            record.member_outboxes[member].send(sm.Commit(
                session_id, member, outboxes=outbox_map,
                params=dict(spec.params),
                deliveries=_resolve_deliveries(spec, member)))

        awaiting = set(spec.members)
        while awaiting:
            msg = yield from self._await_matching(
                record, deadline,
                lambda m: isinstance(m, sm.Ready) and m.member in awaiting)
            if msg is None:
                # Members that accepted are active; unwind via unlink.
                for member in spec.members:
                    record.member_outboxes[member].send(
                        sm.Unlink(session_id, member))
                self._dispose(session_id)
                raise SessionError(
                    f"session {session_id!r}: not ready: {sorted(awaiting)}")
            awaiting.discard(msg.member)

        return Session(self, spec, session_id, ports)

    # -- growth ---------------------------------------------------------------

    def _grow(self, session: Session, mspec: MemberSpec,
              bindings: list[Binding], timeout: float) -> Generator:
        if session.terminated:
            raise SessionError(f"session {session.session_id!r} is terminated")
        if mspec.member in session.members:
            raise SessionError(
                f"member {mspec.member!r} is already in the session")
        for b in bindings:
            if mspec.member not in (b.src_member, b.dst_member):
                raise SessionError(
                    f"growth binding {b} does not involve {mspec.member!r}")
            other = b.dst_member if b.src_member == mspec.member else b.src_member
            if other not in session.members:
                raise SessionError(
                    f"growth binding {b} references unknown member {other!r}")

        record = self._records[session.session_id]
        deadline = self.kernel.now + timeout
        address = yield from self._resolve_address(mspec)
        outbox = self.create_outbox()
        outbox.add(InboxAddress(address, CONTROL_INBOX))
        record.member_outboxes[mspec.member] = outbox
        record.member_addresses[mspec.member] = address
        outbox.send(sm.Prepare(
            session_id=session.session_id, app=session.spec.app,
            member=mspec.member, initiator=self.address,
            reply_to=record.control.named_address,
            inboxes=mspec.inboxes, regions=dict(mspec.regions),
            principal=self._principal))

        msg = yield from self._await_matching(
            record, deadline,
            lambda m: isinstance(m, (sm.Accept, sm.Reject))
            and m.member == mspec.member)
        if msg is None:
            # A late accept must not leave the member prepared forever;
            # FIFO puts this abort after the prepare on its channel.
            outbox.send(sm.Abort(session.session_id, mspec.member))
            self._drop_member_outbox(record, mspec.member)
            raise SessionError(
                f"growth of {session.session_id!r}: no reply from "
                f"{mspec.member!r} within {timeout}s")
        if isinstance(msg, sm.Reject):
            self._drop_member_outbox(record, mspec.member)
            raise SessionRejected(
                f"member {mspec.member!r} rejected joining "
                f"{session.session_id!r}: {msg.reason}",
                participant=mspec.member, reason=msg.reason)
        accept = msg

        session.ports[mspec.member] = dict(accept.ports)
        session.spec.members[mspec.member] = mspec
        session.spec.bindings.extend(bindings)

        try:
            # Commit the new member's own outboxes.
            outbox_map = _resolve_outboxes(session.spec, mspec.member,
                                           session.ports, only=bindings)
            outbox.send(sm.Commit(session.session_id, mspec.member,
                                  outboxes=outbox_map,
                                  params=dict(session.spec.params),
                                  deliveries=_resolve_deliveries(
                                      session.spec, mspec.member,
                                      only=bindings)))

            # Rewire existing members toward the new one (acknowledged).
            toward_new = [b for b in bindings
                          if b.dst_member == mspec.member]
            yield from self._send_bind_adds(session, record, toward_new,
                                            deadline)

            msg = yield from self._await_matching(
                record, deadline,
                lambda m: isinstance(m, sm.Ready)
                and m.member == mspec.member)
            if msg is None:
                raise SessionError(
                    f"growth of {session.session_id!r}: {mspec.member!r} "
                    "never became ready")
        except SessionError:
            # Roll the half-grown member back out: unlink it, remove the
            # channels existing members added toward it, and restore the
            # session records.
            outbox.send(sm.Unlink(session.session_id, mspec.member))
            for b in bindings:
                if b.dst_member != mspec.member:
                    continue
                record.member_outboxes[b.src_member].send(sm.BindRemove(
                    session.session_id, b.src_member, b.outbox,
                    targets=(accept.ports[b.inbox],)))
            session.ports.pop(mspec.member, None)
            session.spec.members.pop(mspec.member, None)
            session.spec.bindings = [
                b for b in session.spec.bindings if b not in bindings]
            self._drop_member_outbox(record, mspec.member)
            raise
        session.members.add(mspec.member)
        return session

    def _drop_member_outbox(self, record: _Record, member: str) -> None:
        outbox = record.member_outboxes.pop(member, None)
        if outbox is not None:
            self.outboxes.pop(outbox.ref, None)

    def _add_bindings(self, session: Session, bindings: list[Binding],
                      timeout: float) -> Generator:
        """Add channels between *existing* members, waiting for acks.

        Used for dynamic rewiring, e.g. closing a ring after a member
        leaves. Destination inboxes must already exist in the session.
        """
        for b in bindings:
            for m in (b.src_member, b.dst_member):
                if m not in session.members:
                    raise SessionError(
                        f"binding {b} references non-member {m!r}")
            if b.inbox not in session.ports[b.dst_member]:
                raise SessionError(
                    f"binding {b}: member {b.dst_member!r} has no session "
                    f"inbox {b.inbox!r}")
        record = self._records[session.session_id]
        deadline = self.kernel.now + timeout
        yield from self._send_bind_adds(session, record, bindings, deadline)
        session.spec.bindings.extend(bindings)
        return session

    def _send_bind_adds(self, session: Session, record: _Record,
                        bindings: list[Binding],
                        deadline: float) -> Generator:
        additions: dict[str, dict[str, list[InboxAddress]]] = {}
        deliveries: dict[tuple[str, str], str] = {}
        for b in bindings:
            additions.setdefault(b.src_member, {}).setdefault(
                b.outbox, []).append(session.ports[b.dst_member][b.inbox])
            if b.delivery != RELIABLE:
                deliveries[(b.src_member, b.outbox)] = b.delivery
        awaiting: set[tuple[str, str]] = set()
        for member, outbox_targets in additions.items():
            for outbox_name, targets in outbox_targets.items():
                record.member_outboxes[member].send(sm.BindAdd(
                    session.session_id, member, outbox_name,
                    targets=tuple(targets),
                    delivery=deliveries.get((member, outbox_name), "")))
                awaiting.add((member, outbox_name))
        while awaiting:
            msg = yield from self._await_matching(
                record, deadline,
                lambda m: isinstance(m, sm.BindAck)
                and (m.member, m.outbox) in awaiting)
            if msg is None:
                raise SessionError(
                    f"session {session.session_id!r}: bind-adds "
                    f"unacknowledged: {sorted(awaiting)}")
            awaiting.discard((msg.member, msg.outbox))

    # -- shrinkage ---------------------------------------------------------------

    def _shrink(self, session: Session, member: str,
                timeout: float) -> Generator:
        if member not in session.members:
            raise SessionError(
                f"member {member!r} is not in session {session.session_id!r}")
        record = self._records[session.session_id]
        deadline = self.kernel.now + timeout

        # Remove channels pointing at the departing member.
        removals: dict[str, dict[str, list[InboxAddress]]] = {}
        for b in session.spec.bindings:
            if b.dst_member == member and b.src_member in session.members:
                removals.setdefault(b.src_member, {}).setdefault(
                    b.outbox, []).append(session.port(member, b.inbox))
        for src, outbox_targets in removals.items():
            for outbox_name, targets in outbox_targets.items():
                record.member_outboxes[src].send(sm.BindRemove(
                    session.session_id, src, outbox_name,
                    targets=tuple(targets)))

        record.member_outboxes[member].send(
            sm.Unlink(session.session_id, member))
        if member not in record.departed:
            # Tolerate a silent member: a None result just means it is
            # unlinked without confirmation.
            yield from self._await_matching(
                record, deadline,
                lambda m: isinstance(m, (sm.UnlinkAck, sm.Leave))
                and m.member == member)

        session.members.discard(member)
        session.ports.pop(member, None)
        session.spec.members.pop(member, None)
        session.spec.bindings = [
            b for b in session.spec.bindings
            if member not in (b.src_member, b.dst_member)]
        return session

    # -- termination ---------------------------------------------------------------

    def _terminate(self, session: Session, timeout: float) -> Generator:
        if session.terminated:
            return session
        record = self._records[session.session_id]
        deadline = self.kernel.now + timeout
        awaiting = set(session.members) - record.departed
        # Sorted, not set order: unlink order must not depend on string
        # hashing, or same-seed traces differ across interpreter runs.
        for member in sorted(awaiting):
            record.member_outboxes[member].send(
                sm.Unlink(session.session_id, member))
        while awaiting:
            msg = yield from self._await_matching(
                record, deadline,
                lambda m: isinstance(m, (sm.UnlinkAck, sm.Leave))
                and m.member in awaiting)
            if msg is None:
                break  # tolerate silent members; teardown proceeds
            awaiting.discard(msg.member)
        session.terminated = True
        self._dispose(session.session_id)
        return session

    # -- plumbing ---------------------------------------------------------------

    def _next_control(self, record: _Record,
                      deadline: float) -> Generator:
        """Receive the next control message before ``deadline``.

        Returns ``None`` on timeout. ``Leave`` notices are recorded on
        the session record as they pass through and handed to callers
        that care.
        """
        remaining = deadline - self.kernel.now
        if remaining <= 0:
            return None
        try:
            msg = yield record.control.receive(timeout=remaining)
        except ReceiveTimeout:
            return None
        if isinstance(msg, sm.Leave):
            record.departed.add(msg.member)
        return msg

    def _await_matching(self, record: _Record, deadline: float,
                        match) -> Generator:
        """The next control message satisfying ``match``.

        Consults messages earlier waits set aside, buffers non-matching
        arrivals for later waits, and returns ``None`` on timeout — so
        interleaved protocol exchanges (bind-acks vs. readies vs.
        unlink-acks) never consume each other's replies.
        """
        for i, msg in enumerate(record.strays):
            if match(msg):
                del record.strays[i]
                return msg
        while True:
            msg = yield from self._next_control(record, deadline)
            if msg is None:
                return None
            if match(msg):
                return msg
            record.strays.append(msg)

    def _dispose(self, session_id: str) -> None:
        record = self._records.pop(session_id, None)
        if record is not None:
            self.close_inbox(record.control)
            # Release the per-member control outboxes so a long-lived
            # initiator does not accumulate ports across sessions.
            for outbox in record.member_outboxes.values():
                self.outboxes.pop(outbox.ref, None)


def _copy_spec(spec: SessionSpec) -> SessionSpec:
    copy = SessionSpec(spec.app, params=spec.params)
    copy.members = dict(spec.members)
    copy.bindings = list(spec.bindings)
    return copy


def _resolve_outboxes(spec: SessionSpec, member: str,
                      ports: dict[str, dict[str, InboxAddress]],
                      only: list[Binding] | None = None,
                      ) -> dict[str, tuple[InboxAddress, ...]]:
    """Map a member's outbox names to the resolved target addresses."""
    result: dict[str, list[InboxAddress]] = {}
    bindings = only if only is not None else spec.bindings
    for b in bindings:
        if b.src_member != member:
            continue
        result.setdefault(b.outbox, []).append(ports[b.dst_member][b.inbox])
    return {name: tuple(targets) for name, targets in result.items()}


def _resolve_deliveries(spec: SessionSpec, member: str,
                        only: list[Binding] | None = None) -> dict[str, str]:
    """The member's non-default delivery classes, outbox name -> class.

    Only non-RELIABLE entries travel in the Commit (absent names default
    to RELIABLE), so pre-class sessions serialize byte-identically.
    """
    result: dict[str, str] = {}
    bindings = only if only is not None else spec.bindings
    for b in bindings:
        if b.src_member == member and b.delivery != RELIABLE:
            result[b.outbox] = b.delivery
    return result
