"""Session interference.

The paper (§2.2): "Two sessions must not be allowed to proceed
concurrently if one modifies variables accessed by the other." A session
declares, per member, the persistent-state regions it touches and the
mode (``"r"`` or ``"rw"``); two region maps *conflict* when some region
appears in both and at least one side writes it.

:class:`InterferenceMonitor` is an execution monitor used by tests and
benchmarks: session managers report activation and deactivation, and the
monitor asserts the exclusion invariant on every transition.
"""

from __future__ import annotations

from repro.dapplet.state import WRITE
from repro.errors import InterferenceError


def regions_conflict(a: dict[str, str], b: dict[str, str]) -> bool:
    """True when the two region-mode maps must not run concurrently."""
    shared = a.keys() & b.keys()
    return any(a[r] == WRITE or b[r] == WRITE for r in shared)


class InterferenceMonitor:
    """Asserts the paper's exclusion requirement over a whole run.

    Attach via :meth:`watch`; every session activation on a dapplet is
    checked against the sessions already active there.
    """

    def __init__(self) -> None:
        #: dapplet name -> {session_id: region map}
        self._active: dict[str, dict[str, dict[str, str]]] = {}
        self.activations = 0
        self.max_concurrent = 0

    def activated(self, dapplet_name: str, session_id: str,
                  regions: dict[str, str]) -> None:
        sessions = self._active.setdefault(dapplet_name, {})
        for other_id, other_regions in sessions.items():
            if regions_conflict(regions, other_regions):
                raise InterferenceError(
                    f"sessions {session_id!r} and {other_id!r} are "
                    f"concurrently active on {dapplet_name!r} with "
                    f"conflicting regions")
        sessions[session_id] = dict(regions)
        self.activations += 1
        self.max_concurrent = max(self.max_concurrent, len(sessions))

    def deactivated(self, dapplet_name: str, session_id: str) -> None:
        self._active.get(dapplet_name, {}).pop(session_id, None)

    def concurrently_active(self, dapplet_name: str) -> int:
        return len(self._active.get(dapplet_name, {}))
