"""Wire messages of the session link-up protocol.

The protocol is the two-phase shape the paper sketches in §3.1: the
initiator *requests* each component to link itself up; a component
*accepts* (exposing the global addresses of the session inboxes it
created) or *rejects* (ACL or interference); when all accept, the
initiator *commits* the bindings, and each member reports *ready*; any
rejection *aborts* the accepted members. Termination is the paper's
"component dapplets unlink themselves": *unlink*/*unlink-ack*.
``BindAdd``/``BindRemove`` implement session growth and shrinkage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.messages.message import Message, message_type
from repro.net.address import InboxAddress, NodeAddress


@message_type("session.prepare")
@dataclass(frozen=True)
class Prepare(Message):
    session_id: str
    app: str
    member: str
    initiator: NodeAddress
    reply_to: InboxAddress
    inboxes: tuple = ()
    regions: dict = field(default_factory=dict)
    #: When true, an interfering prepare is queued until the conflicting
    #: sessions end, instead of being rejected ("sessions that interfere
    #: ... are not *scheduled* concurrently"). ACL rejections are never
    #: queued.
    queue: bool = False
    #: Name of the initiating dapplet's owning principal ("" when the
    #: initiator is unowned). Owned targets check it against their
    #: capability grants; the default keeps pre-registry frames
    #: serializing byte-identically.
    principal: str = ""


@message_type("session.accept")
@dataclass(frozen=True)
class Accept(Message):
    session_id: str
    member: str
    ports: dict = field(default_factory=dict)  # port name -> InboxAddress


@message_type("session.reject")
@dataclass(frozen=True)
class Reject(Message):
    session_id: str
    member: str
    reason: str = ""


@message_type("session.commit")
@dataclass(frozen=True)
class Commit(Message):
    session_id: str
    member: str
    outboxes: dict = field(default_factory=dict)  # name -> tuple[InboxAddress]
    params: dict = field(default_factory=dict)
    #: Outbox name -> delivery class, for outboxes whose channels are
    #: not plain RELIABLE (absent names default to RELIABLE).
    deliveries: dict = field(default_factory=dict)


@message_type("session.ready")
@dataclass(frozen=True)
class Ready(Message):
    session_id: str
    member: str


@message_type("session.abort")
@dataclass(frozen=True)
class Abort(Message):
    session_id: str
    member: str


@message_type("session.unlink")
@dataclass(frozen=True)
class Unlink(Message):
    session_id: str
    member: str


@message_type("session.unlink_ack")
@dataclass(frozen=True)
class UnlinkAck(Message):
    session_id: str
    member: str


@message_type("session.bind_add")
@dataclass(frozen=True)
class BindAdd(Message):
    session_id: str
    member: str
    outbox: str
    targets: tuple = ()  # tuple[InboxAddress]
    #: Delivery class for a newly created outbox ("" = RELIABLE).
    delivery: str = ""


@message_type("session.bind_ack")
@dataclass(frozen=True)
class BindAck(Message):
    session_id: str
    member: str
    outbox: str


@message_type("session.bind_remove")
@dataclass(frozen=True)
class BindRemove(Message):
    session_id: str
    member: str
    outbox: str
    targets: tuple = ()


@message_type("session.leave")
@dataclass(frozen=True)
class Leave(Message):
    """Courtesy notice from a member that unilaterally left."""

    session_id: str
    member: str
    reason: str = ""
