"""Session specifications.

A :class:`SessionSpec` is what the center director hands the initiator
in Figure 2: which dapplets participate (by directory name), which
session ports each creates, which persistent-state regions each member
needs (and in which mode), and how outboxes are wired to inboxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dapplet.state import MODES
from repro.errors import SessionError
from repro.net.address import NodeAddress
from repro.net.delivery import DELIVERY_CLASSES, RELIABLE


@dataclass(frozen=True, slots=True)
class Binding:
    """One channel of the session: ``src_member.outbox -> dst_member.inbox``.

    ``delivery`` is the channel's delivery class (see
    :mod:`repro.net.delivery`); every binding on one outbox must agree.
    """

    src_member: str
    outbox: str
    dst_member: str
    inbox: str
    delivery: str = RELIABLE


@dataclass
class MemberSpec:
    """One participant.

    ``directory_name`` is looked up in the world's address directory
    unless an explicit ``address`` is given.
    """

    member: str
    directory_name: str = ""
    address: NodeAddress | None = None
    inboxes: tuple[str, ...] = ()
    regions: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.directory_name:
            self.directory_name = self.member
        for region, mode in self.regions.items():
            if mode not in MODES:
                raise SessionError(
                    f"member {self.member!r}: region {region!r} mode must be "
                    f"one of {MODES}, got {mode!r}")


class SessionSpec:
    """The blueprint an initiator builds a session from."""

    def __init__(self, app: str, params: dict | None = None) -> None:
        self.app = app
        self.params = dict(params or {})
        self.members: dict[str, MemberSpec] = {}
        self.bindings: list[Binding] = []

    def add_member(self, member: str, *, directory_name: str = "",
                   address: NodeAddress | None = None,
                   inboxes: tuple[str, ...] | list[str] = (),
                   regions: dict[str, str] | None = None) -> MemberSpec:
        """Declare a participant and its session ports / state regions."""
        if member in self.members:
            raise SessionError(f"member {member!r} declared twice")
        spec = MemberSpec(member=member, directory_name=directory_name,
                          address=address, inboxes=tuple(inboxes),
                          regions=dict(regions or {}))
        self.members[member] = spec
        return spec

    def bind(self, src_member: str, outbox: str, dst_member: str,
             inbox: str, *, delivery: str = RELIABLE) -> None:
        """Add a channel from ``src_member``'s ``outbox`` to
        ``dst_member``'s ``inbox``. ``delivery`` picks the channel's
        delivery class (every binding on one outbox must agree)."""
        self.bindings.append(
            Binding(src_member, outbox, dst_member, inbox, delivery))

    # -- derived views ------------------------------------------------------

    def outboxes_of(self, member: str) -> dict[str, list[Binding]]:
        """The member's outbox names with the bindings on each."""
        out: dict[str, list[Binding]] = {}
        for b in self.bindings:
            if b.src_member == member:
                out.setdefault(b.outbox, []).append(b)
        return out

    def validate(self) -> None:
        """Check internal consistency; raises :class:`SessionError`."""
        if not self.members:
            raise SessionError("session spec has no members")
        outbox_delivery: dict[tuple[str, str], str] = {}
        for b in self.bindings:
            for side, m in (("source", b.src_member),
                            ("destination", b.dst_member)):
                if m not in self.members:
                    raise SessionError(
                        f"binding {b} references unknown {side} member {m!r}")
            if b.inbox not in self.members[b.dst_member].inboxes:
                raise SessionError(
                    f"binding {b} targets inbox {b.inbox!r} which member "
                    f"{b.dst_member!r} does not declare")
            if b.src_member == b.dst_member:
                raise SessionError(f"binding {b} is a self-loop")
            if b.delivery not in DELIVERY_CLASSES:
                raise SessionError(
                    f"binding {b} has unknown delivery class "
                    f"{b.delivery!r}; expected one of {DELIVERY_CLASSES}")
            key = (b.src_member, b.outbox)
            prior = outbox_delivery.setdefault(key, b.delivery)
            if prior != b.delivery:
                raise SessionError(
                    f"outbox {b.outbox!r} of member {b.src_member!r} is "
                    f"bound with conflicting delivery classes "
                    f"{prior!r} and {b.delivery!r}")
