"""The per-dapplet session manager servlet.

Every dapplet runs one: a server process on the well-known ``_session``
inbox that speaks the link-up protocol. On ``Prepare`` it checks the
access-control list, the initiating principal's capability grants (on
owned dapplets; see :mod:`repro.registry`) and session interference,
creates the member's session inboxes, and replies with their
global addresses; on ``Commit`` it builds and binds the outboxes, hands
the application its :class:`SessionContext`, and reports ``Ready``; on
``Unlink``/``Abort`` it tears down. ``BindAdd``/``BindRemove`` rewire
channels when the session grows or shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import TYPE_CHECKING

from repro.errors import BindingError
from repro.mailbox.inbox import Inbox
from repro.mailbox.outbox import Outbox
from repro.messages.message import Message
from repro.net.address import InboxAddress
from repro.session import messages as sm
from repro.session.interference import regions_conflict
from repro.session.session import SessionContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet

#: Well-known name of the session-control inbox on every dapplet.
CONTROL_INBOX = "_session"

#: How many ended-session reply addresses to remember for acknowledging
#: duplicate unlinks. Bounds state on long-lived dapplets; a duplicate
#: unlink for a session older than the newest TOMBSTONES is silently
#: dropped, which the initiator's terminate timeout already tolerates.
TOMBSTONES = 256


@dataclass
class SessionStats:
    prepares: int = 0
    accepts: int = 0
    rejects_acl: int = 0
    rejects_capability: int = 0
    rejects_interference: int = 0
    queued: int = 0
    commits: int = 0
    unlinks: int = 0
    aborts: int = 0


#: Historical name of :class:`SessionStats`, kept for compatibility.
ManagerStats = SessionStats


@dataclass
class _Entry:
    """One session this dapplet is (or is preparing to be) part of."""

    session_id: str
    app: str
    member: str
    regions: dict[str, str]
    reply_to: InboxAddress
    inboxes: dict[str, Inbox] = dc_field(default_factory=dict)
    ctx: SessionContext | None = None

    @property
    def active(self) -> bool:
        return self.ctx is not None and self.ctx.active


class SessionManager:
    """Speaks the session protocol on behalf of one dapplet."""

    def __init__(self, dapplet: "Dapplet") -> None:
        self.dapplet = dapplet
        self.kernel = dapplet.kernel
        self.stats = SessionStats()
        self._entries: dict[str, _Entry] = {}
        #: Prepares held back by interference (queue=True), FIFO.
        self._admission_queue: list[sm.Prepare] = []
        #: session id -> last known reply address (survives teardown so
        #: duplicate terminations still get acknowledged).
        self._reply_addresses: dict[str, InboxAddress] = {}
        self._reply_outboxes: dict[InboxAddress, Outbox] = {}
        self.inbox = dapplet.create_inbox(name=CONTROL_INBOX)
        self.server = dapplet.spawn(self._serve(), name="session-manager")

    # -- helpers ----------------------------------------------------------

    def _reply(self, to: InboxAddress, message: Message) -> None:
        outbox = self._reply_outboxes.get(to)
        if outbox is None:
            outbox = self.dapplet.create_outbox()
            outbox.add(to)
            self._reply_outboxes[to] = outbox
        outbox.send(message)

    def active_sessions(self) -> list[str]:
        return sorted(sid for sid, e in self._entries.items() if e.active)

    def _interferes(self, regions: dict[str, str]) -> bool:
        return any(regions_conflict(regions, e.regions)
                   for e in self._entries.values())

    def _queued_ahead(self, msg: sm.Prepare) -> bool:
        """FIFO fairness for *fresh* arrivals: a prepare that conflicts
        with an already-queued one waits behind it rather than
        overtaking it. (Admissions from the queue itself never consult
        this — they are FIFO-selected by :meth:`_admit_queued`.)"""
        return any(regions_conflict(dict(msg.regions), dict(q.regions))
                   for q in self._admission_queue
                   if q.session_id != msg.session_id)

    def _admit_queued(self) -> None:
        """Admit queued prepares whose conflicts are gone.

        FIFO with no conflicting overtake: a candidate is admitted only
        if it conflicts neither with active entries nor with any
        *earlier* queued prepare.
        """
        progressed = True
        while progressed:
            progressed = False
            earlier: list[sm.Prepare] = []
            for msg in list(self._admission_queue):
                if msg.session_id in self._entries:
                    self._admission_queue.remove(msg)  # duplicate
                    progressed = True
                    break
                regions = dict(msg.regions)
                if not self._interferes(regions) and not any(
                        regions_conflict(regions, dict(e.regions))
                        for e in earlier):
                    self._admission_queue.remove(msg)
                    self._on_prepare(msg, from_queue=True)
                    progressed = True
                    break
                earlier.append(msg)

    def _denied_verb(self, principal: str) -> "str | None":
        """The first session-gate verb ``principal`` lacks, or ``None``.

        Checked against the world registry: ``session.establish``
        first, then each verb the dapplet's manifest ``requires``.
        Every check emits a ``reg`` allow/deny audit event.
        """
        dapplet = self.dapplet
        registry = dapplet.world.registry
        target = dapplet.manifest_name
        owner = dapplet.owner.name
        for verb in ("session.establish", *dapplet.requires):
            if not registry.check(principal, target, verb, owner=owner,
                                  node=dapplet.address):
                return verb
        return None

    # -- the server loop -----------------------------------------------------

    def _serve(self):
        handlers = {
            sm.Prepare: self._on_prepare,
            sm.Commit: self._on_commit,
            sm.Abort: self._on_abort,
            sm.Unlink: self._on_unlink,
            sm.BindAdd: self._on_bind_add,
            sm.BindRemove: self._on_bind_remove,
        }
        while True:
            msg = yield self.inbox.receive()
            handler = handlers.get(type(msg))
            if handler is not None:
                handler(msg)
            # Unknown control messages are ignored (forward compatibility).

    # -- protocol handlers -----------------------------------------------------

    def _on_prepare(self, msg: sm.Prepare, *, from_queue: bool = False) -> None:
        self.stats.prepares += 1
        existing = self._entries.get(msg.session_id)
        if existing is not None:
            # Duplicate prepare (initiator retry): re-accept idempotently.
            self.stats.accepts += 1
            self._reply(msg.reply_to, sm.Accept(
                msg.session_id, existing.member,
                {n: ib.named_address for n, ib in existing.inboxes.items()}))
            return
        tr = self.kernel.tracer
        if not self.dapplet.acl.allows(msg.initiator):
            self.stats.rejects_acl += 1
            if tr is not None:
                tr.emit("session", "reject", node=self.dapplet.address,
                        sid=msg.session_id, member=msg.member, reason="acl")
            self._reply(msg.reply_to, sm.Reject(
                msg.session_id, msg.member, reason="acl"))
            return
        if self.dapplet.owner is not None:
            # Owned dapplet: the initiating principal must hold
            # session.establish plus every manifest-required verb.
            denied = self._denied_verb(msg.principal)
            if denied is not None:
                self.stats.rejects_capability += 1
                reason = f"capability:{denied}"
                if tr is not None:
                    tr.emit("session", "reject", node=self.dapplet.address,
                            sid=msg.session_id, member=msg.member,
                            reason=reason)
                self._reply(msg.reply_to, sm.Reject(
                    msg.session_id, msg.member, reason=reason))
                return
        if not from_queue and any(q.session_id == msg.session_id
                                  for q in self._admission_queue):
            return  # already queued; a retry changes nothing
        regions = dict(msg.regions)
        if self._interferes(regions) or (not from_queue
                                         and self._queued_ahead(msg)):
            if msg.queue:
                # "Not scheduled concurrently": admit later, in arrival
                # order, once the conflicting sessions are gone.
                self.stats.queued += 1
                self._admission_queue.append(msg)
                return
            self.stats.rejects_interference += 1
            if tr is not None:
                tr.emit("session", "reject", node=self.dapplet.address,
                        sid=msg.session_id, member=msg.member,
                        reason="interference")
            self._reply(msg.reply_to, sm.Reject(
                msg.session_id, msg.member, reason="interference"))
            return

        entry = _Entry(session_id=msg.session_id, app=msg.app,
                       member=msg.member, regions=regions,
                       reply_to=msg.reply_to)
        for port_name in msg.inboxes:
            entry.inboxes[port_name] = self.dapplet.create_inbox(
                name=f"{msg.session_id}:{port_name}")
        self._entries[msg.session_id] = entry
        self._reply_addresses[msg.session_id] = msg.reply_to
        if len(self._reply_addresses) > TOMBSTONES:
            # Evict the oldest *ended* session's address (dicts iterate
            # in insertion order); live sessions are never evicted.
            for sid in self._reply_addresses:
                if sid not in self._entries:
                    del self._reply_addresses[sid]
                    break
        self.stats.accepts += 1
        self._reply(msg.reply_to, sm.Accept(
            msg.session_id, msg.member,
            {n: ib.named_address for n, ib in entry.inboxes.items()}))

    def _on_commit(self, msg: sm.Commit) -> None:
        entry = self._entries.get(msg.session_id)
        if entry is None:
            return  # committed after abort/teardown: drop
        if entry.ctx is not None:
            self._reply(entry.reply_to, sm.Ready(msg.session_id, entry.member))
            return  # duplicate commit
        self.stats.commits += 1
        ctx = SessionContext(
            self.dapplet, msg.session_id, entry.app, entry.member,
            msg.params, dict(entry.inboxes), entry.regions)
        for name, targets in msg.outboxes.items():
            outbox = self.dapplet.create_outbox(
                delivery=msg.deliveries.get(name))
            for target in targets:
                outbox.add(target)
            ctx._outboxes[name] = outbox
        entry.ctx = ctx
        ctx.active = True
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("session", "join", node=self.dapplet.address,
                    sid=msg.session_id, member=entry.member, app=entry.app)
        monitor = getattr(self.dapplet.world, "interference_monitor", None)
        if monitor is not None:
            monitor.activated(self.dapplet.name, msg.session_id, entry.regions)
        self._reply(entry.reply_to, sm.Ready(msg.session_id, entry.member))
        body = self.dapplet.on_session_start(ctx)
        if body is not None:
            ctx.process = self.dapplet.spawn(
                body, name=f"session:{msg.session_id}")

    def _on_abort(self, msg: sm.Abort) -> None:
        self._admission_queue = [q for q in self._admission_queue
                                 if q.session_id != msg.session_id]
        entry = self._entries.pop(msg.session_id, None)
        if entry is None:
            self._admit_queued()
            return
        self.stats.aborts += 1
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("session", "abort", node=self.dapplet.address,
                    sid=entry.session_id, member=entry.member)
        for inbox in entry.inboxes.values():
            self.dapplet.close_inbox(inbox)
        self._drop_reply_outbox(entry.reply_to)
        self._admit_queued()

    def _on_unlink(self, msg: sm.Unlink) -> None:
        entry = self._entries.get(msg.session_id)
        reply_to = self._reply_addresses.get(msg.session_id)
        if reply_to is not None:
            # Ack first: teardown drops the cached reply outbox, and the
            # transmission is already handed to the endpoint by then.
            member = entry.member if entry is not None else msg.member
            self._reply(reply_to, sm.UnlinkAck(msg.session_id, member))
        if entry is not None:
            self._teardown(entry)

    def _on_bind_add(self, msg: sm.BindAdd) -> None:
        entry = self._entries.get(msg.session_id)
        if entry is None or entry.ctx is None:
            return
        outbox = entry.ctx._outboxes.get(msg.outbox)
        if outbox is None:
            outbox = self.dapplet.create_outbox(
                delivery=msg.delivery or None)
            entry.ctx._outboxes[msg.outbox] = outbox
        for target in msg.targets:
            outbox.add(target)
        self._reply(entry.reply_to,
                    sm.BindAck(msg.session_id, entry.member, msg.outbox))

    def _on_bind_remove(self, msg: sm.BindRemove) -> None:
        entry = self._entries.get(msg.session_id)
        if entry is None or entry.ctx is None:
            return
        outbox = entry.ctx._outboxes.get(msg.outbox)
        if outbox is None:
            return
        for target in msg.targets:
            try:
                outbox.delete(target)
            except BindingError:
                pass  # already gone; removal is idempotent

    # -- teardown ------------------------------------------------------------

    def _teardown(self, entry: _Entry) -> None:
        self.stats.unlinks += 1
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("session", "leave", node=self.dapplet.address,
                    sid=entry.session_id, member=entry.member)
        self._entries.pop(entry.session_id, None)
        ctx = entry.ctx
        for inbox in entry.inboxes.values():
            self.dapplet.close_inbox(inbox)
        if ctx is not None:
            # Session outboxes die with the session ("component dapplets
            # unlink themselves from each other").
            for outbox in ctx._outboxes.values():
                self.dapplet.outboxes.pop(outbox.ref, None)
        if ctx is not None and ctx.active:
            ctx.active = False
            monitor = getattr(self.dapplet.world, "interference_monitor", None)
            if monitor is not None:
                monitor.deactivated(self.dapplet.name, entry.session_id)
            self.dapplet.on_session_end(ctx)
        # The cached reply outbox is per-session (the initiator's control
        # inbox is); drop it so long-lived dapplets do not accumulate
        # one per past session. A late duplicate unlink transparently
        # recreates it via the tombstone in _reply_addresses.
        self._drop_reply_outbox(entry.reply_to)
        # Freed regions may unblock queued admissions.
        self._admit_queued()

    def _drop_reply_outbox(self, to: InboxAddress) -> None:
        outbox = self._reply_outboxes.pop(to, None)
        if outbox is not None:
            self.dapplet.outboxes.pop(outbox.ref, None)

    def _member_leave(self, ctx: SessionContext, reason: str) -> None:
        """Called by :meth:`SessionContext.leave`."""
        entry = self._entries.get(ctx.session_id)
        if entry is None:
            return
        self._reply(entry.reply_to, sm.Leave(ctx.session_id, ctx.member,
                                             reason=reason))
        self._teardown(entry)
