"""E3 — Figure 3: outbox -> inbox fan-out and fan-in.

Scenario: one dapplet's outbox bound to F inboxes on other dapplets
("dapplet 2's outbox is bound to the inboxes of dapplets 3, 4 and 5");
a burst of messages flows. Metrics: datagrams per message, virtual time
for all copies, and FIFO integrity under reordering faults.

Shape claims: copies (and datagrams) grow linearly with fan-out — the
layer "sends a copy of the message along all channels connected to that
outbox" — while per-copy latency stays flat; FIFO holds per channel at
every fault level.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table, write_results
from repro import Dapplet, World
from repro.messages import Text
from repro.net import ConstantLatency, FaultPlan
from repro.world import World


class Node(Dapplet):
    kind = "node"


N_MESSAGES = 50


def run_fanout(fanout: int, *, reorder: float = 0.0, seed: int = 5,
               tracer=None):
    world = World(seed=seed, latency=ConstantLatency(0.02),
                  faults=FaultPlan(reorder_jitter=reorder),
                  tracer=tracer)
    sender = world.dapplet(Node, "caltech.edu", "sender")
    inboxes = []
    for i in range(fanout):
        d = world.dapplet(Node, f"site{i}.edu", f"r{i}")
        inboxes.append(d.create_inbox(name="in"))
    outbox = sender.create_outbox()
    for inbox in inboxes:
        outbox.add(inbox.named_address)
    before = world.network.stats.sent
    t0 = world.now
    for i in range(N_MESSAGES):
        outbox.send(Text(str(i)))
    world.run()
    elapsed = world.now - t0
    datagrams = world.network.stats.sent - before
    fifo = all([int(m.text) for m in ib.queued()] == list(range(N_MESSAGES))
               for ib in inboxes)
    complete = all(len(ib.queued()) == N_MESSAGES for ib in inboxes)
    result = {"elapsed": elapsed, "datagrams": datagrams, "fifo": fifo,
              "complete": complete}
    if tracer is not None:
        summary = tracer.summary()
        result["obs"] = {"counters": summary["counters"],
                         "ep_rtt": summary["histograms"].get("ep.rtt")}
    return result


@pytest.fixture(scope="module")
def results():
    # Table runs carry a metrics-only tracer (protocol counters land in
    # BENCH_e3_fanout.json); the benchmark()-timed run below does NOT —
    # it times the uninstrumented fast path.
    from repro import Tracer
    fanouts = (1, 2, 4, 8, 16)
    return fanouts, {f: run_fanout(f, reorder=0.1,
                                   tracer=Tracer(metrics_only=True))
                     for f in fanouts}


def test_e3_table_and_shape(results, benchmark, request):
    fanouts, table = results
    write_results(request, "e3_fanout",
                  {str(f): table[f] for f in fanouts}, seed=5)
    rows = [[f, N_MESSAGES, table[f]["datagrams"],
             f"{table[f]['datagrams'] / (N_MESSAGES * f):.2f}",
             f"{table[f]['elapsed']:.3f}",
             table[f]["fifo"], table[f]["complete"]] for f in fanouts]
    print_table("E3: fan-out delivery (50 msgs, 10% reorder jitter)",
                ["fanout", "messages", "datagrams", "dgrams/copy",
                 "elapsed (s)", "fifo", "complete"], rows)

    for f in fanouts:
        assert table[f]["fifo"] and table[f]["complete"]
    # Shape: datagrams linear in fan-out (within ack/retx noise).
    ratio = table[16]["datagrams"] / table[1]["datagrams"]
    assert 12 < ratio < 20
    # Shape: elapsed roughly flat (copies go out in parallel).
    assert table[16]["elapsed"] < 3 * table[1]["elapsed"]

    benchmark(run_fanout, 8)


def test_e3_fanin(benchmark, request):
    """Fan-in: many outboxes bound to one inbox; all arrive, each
    channel independently FIFO."""
    def run(n_senders=8):
        world = World(seed=6, latency=ConstantLatency(0.02),
                      faults=FaultPlan(reorder_jitter=0.1))
        hub = world.dapplet(Node, "caltech.edu", "hub")
        inbox = hub.create_inbox(name="in")
        for i in range(n_senders):
            d = world.dapplet(Node, f"site{i}.edu", f"s{i}")
            ob = d.create_outbox()
            ob.add(inbox.named_address)
            for k in range(20):
                ob.send(Text(f"{i}:{k}"))
        world.run()
        got = [m.text for m in inbox.queued()]
        assert len(got) == n_senders * 20
        for i in range(n_senders):
            mine = [int(t.split(":")[1]) for t in got
                    if t.startswith(f"{i}:")]
            assert mine == list(range(20))
        return len(got)

    received = benchmark(run)
    assert received == 160
    write_results(request, "e3_fanin", {"received": received}, seed=6)
