"""Compare fresh ``BENCH_*.json`` results against checked-in baselines.

CI's bench-smoke job runs the benchmark suite with ``--json <dir>`` and
then::

    python benchmarks/check_regression.py <dir>

For every ``benchmarks/baselines/BENCH_<id>.json`` with a fresh
counterpart in ``<dir>``, the guarded metrics (below) must not regress
by more than their tolerance. Only virtual-time (simulator) metrics are
guarded — they are seed-deterministic, so any drift is a protocol
change, not machine noise; wall-clock metrics (the ``aio/*`` rows) are
recorded for inspection but never gate.

Exit status: 0 when everything holds, 1 on any regression or a missing
fresh result for a baselined benchmark.
"""

from __future__ import annotations

import json
import pathlib
import sys

BASELINES = pathlib.Path(__file__).resolve().parent / "baselines"

#: bench id -> list of (dotted metric path, tolerated fractional drop).
#: "higher is better" for every guarded metric.
GUARDED = {
    "e13_throughput": [("sim/flow.goodput", 0.20),
                       ("sim/noflow.goodput", 0.20),
                       ("sim/wire.goodput", 0.20)],
    "e14_discovery": [("sim/cached.resolves_per_s", 0.20),
                      ("sim/cached.hit_rate", 0.10),
                      ("sim/churn.bound_margin", 0.50)],
    # Size ratios are pure functions of the codec (bit-deterministic on
    # any machine); the wall-clock roundtrips/s are recorded, not gated.
    "e15_wire": [("data_small.size_ratio", 0.05),
                 ("data_batch32.size_ratio", 0.01),
                 ("ack_full.size_ratio", 0.05),
                 ("probe.size_ratio", 0.05)],
    # Delivery-class ratios on the simulator: unreliable-vs-reliable
    # throughput and the reliable-vs-skip p99 under 5% loss. Both are
    # seed-deterministic ratios well above their floors (2x resp. 1x).
    "e16_delivery": [("sim/tput.unreliable_speedup", 0.25),
                     ("sim/lat.skip_p99_advantage", 0.25)],
    # Journal density and fold compaction are pure functions of the WAL
    # framing + canonical-JSON codec (byte-deterministic); recovery
    # equivalence is the crash matrix as a fraction — 1.0 or it's a
    # recovery bug, so zero tolerance.
    "e17_persistence": [("sim/wal.ops_per_kb", 0.05),
                        ("sim/fold.compaction", 0.10),
                        ("sim/recovery.equal", 0.0)],
    # Sharded token service: the overhead bound (multi-shard p50 within
    # 2x of single-shard) and the soak's granted fraction are both
    # boolean-like invariants — zero tolerance; the soak's virtual-time
    # throughput is seed-deterministic with headroom for protocol
    # tuning.
    "e18_token_shards": [("sim/overhead.within_bound", 0.0),
                         ("sim/soak.granted_frac", 0.0),
                         ("sim/soak.requests_per_s", 0.25)],
    # Capability registry: the cached grant-check overhead bound on the
    # session-establish path and the churn soak's exact-enforcement
    # fractions are boolean-like invariants — zero tolerance; the
    # soak's virtual-time throughput is seed-deterministic.
    "e19_registry": [("sim/establish.within_bound", 0.0),
                     ("sim/churn.granted_frac", 0.0),
                     ("sim/churn.denied_ok", 0.0),
                     ("sim/churn.establishes_per_s", 0.25)],
}


def lookup(metrics: dict, path: str) -> float:
    node = metrics
    for part in path.split("."):
        node = node[part]
    return float(node)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} <results-dir>", file=sys.stderr)
        return 2
    results_dir = pathlib.Path(argv[1])
    failures = 0
    checked = 0
    for baseline_path in sorted(BASELINES.glob("BENCH_*.json")):
        baseline = json.loads(baseline_path.read_text())
        bench_id = baseline["id"]
        fresh_path = results_dir / baseline_path.name
        if not fresh_path.exists():
            print(f"FAIL {bench_id}: no fresh result at {fresh_path}")
            failures += 1
            continue
        fresh = json.loads(fresh_path.read_text())
        for path, tolerance in GUARDED.get(bench_id, ()):
            old = lookup(baseline["metrics"], path)
            new = lookup(fresh["metrics"], path)
            floor = old * (1.0 - tolerance)
            verdict = "ok" if new >= floor else "FAIL"
            print(f"{verdict:4s} {bench_id} {path}: baseline {old:.2f} "
                  f"-> fresh {new:.2f} (floor {floor:.2f})")
            checked += 1
            if new < floor:
                failures += 1
    if checked == 0:
        print("FAIL: no guarded metrics were checked")
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
