"""E18 — sharded token service: forwarding overhead and a soak at scale.

Two measurements over ``repro.services.tokens.shard``, both on the
simulator (virtual time, seed-deterministic — any drift is a protocol
change):

* **Forwarding overhead** (deterministic, guarded): one uncontended
  workload run on 1, 4 and 16 shards. A request whose colour is homed
  on the agent's own shard costs one round trip; a foreign colour adds
  one prepare/prepared exchange, so the median request latency on a
  multi-shard ring must stay within 2x of the single-shard median
  (two extra one-way hops at most double the no-contention path).

* **Soak** (deterministic, guarded): a 16-shard ring serving 2000
  agents, every request granted all-at-once (two-phase use, so the
  probe protocol must never kill one). Records the request-to-grant
  tail (p50/p99), granted fraction (1.0 or the service lost a
  request), virtual-time throughput, and cross-shard forwarding volume.

Run with ``--json DIR`` to emit ``BENCH_e18_token_shards.json``.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table, write_results
from repro.dapplet import Dapplet
from repro.net import ConstantLatency
from repro.world import World

SEED = 18

#: Overhead grid: same workload, growing ring.
GRID_SHARDS = (1, 4, 16)
GRID_AGENTS = 200
GRID_COLORS = 8
GRID_TOKENS = 32         # 8 * 32 = 256 tokens >= 200 agents: no queueing
GRID_ROUNDS = 4

#: Soak: the acceptance-criteria world.
SOAK_SHARDS = 16
SOAK_AGENTS = 2000
SOAK_COLORS = 64
SOAK_TOKENS = 40         # 64 * 40 = 2560 tokens: mild contention
SOAK_ROUNDS = 3

#: Multi-shard p50 must stay within this factor of the 1-shard p50.
OVERHEAD_BOUND = 2.05


class Plain(Dapplet):
    kind = "plain"


def _pct(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def run_shard_world(n_shards: int, n_agents: int, n_colors: int,
                    tokens_per_color: int, rounds: int,
                    seed: int = SEED) -> dict:
    """One deterministic workload against an ``n_shards`` ring.

    Every agent runs ``rounds`` two-phase cycles: request one colour
    (all at once), hold briefly, release. Latencies are virtual time
    from send to grant, measured at the agent.
    """
    colors = [f"c{i}" for i in range(n_colors)]
    world = World(seed=seed, latency=ConstantLatency(0.01))
    service = world.host_token_shards(n_shards,
                                      dict.fromkeys(colors,
                                                    tokens_per_color))
    latencies: list[float] = []
    completed = []

    def worker(agent, i):
        # Staggered starts spread arrivals over ~1s of virtual time.
        yield world.kernel.timeout(0.01 * (i % 97))
        for r in range(rounds):
            color = colors[(i * 7 + r) % n_colors]
            t0 = world.now
            yield agent.request({color: 1})
            latencies.append(world.now - t0)
            yield world.kernel.timeout(0.05)
            agent.release({color: 1})
        completed.append(i)

    for i in range(n_agents):
        agent = service.attach(world.dapplet(Plain, f"s{i}.edu", f"a{i}"))
        world.process(worker(agent, i))
    world.run()
    assert len(completed) == n_agents, "soak lost agents"
    service.check_conservation()
    assert service.quiescent
    requests = n_agents * rounds
    return {
        "shards": n_shards,
        "agents": n_agents,
        "requests": requests,
        "granted_frac": service.grants / requests,
        "deadlocks": service.deadlocks,
        "p50": _pct(latencies, 0.50),
        "p99": _pct(latencies, 0.99),
        "mean": sum(latencies) / len(latencies),
        "virtual_duration": world.now,
        "requests_per_s": requests / world.now,
        "forwards": service.forwards,
        "forwards_per_request": service.forwards / requests,
        "probes_sent": service.probes_sent,
    }


def run_overhead_grid() -> dict:
    grid = {f"shards{n}": run_shard_world(n, GRID_AGENTS, GRID_COLORS,
                                          GRID_TOKENS, GRID_ROUNDS)
            for n in GRID_SHARDS}
    base_p50 = grid["shards1"]["p50"]
    worst = max(grid[f"shards{n}"]["p50"] / base_p50
                for n in GRID_SHARDS if n > 1)
    grid["base_p50"] = base_p50
    grid["worst_ratio"] = worst
    grid["within_bound"] = 1.0 if worst <= OVERHEAD_BOUND else 0.0
    return grid


@pytest.fixture(scope="module")
def results():
    return {
        "sim/overhead": run_overhead_grid(),
        "sim/soak": run_shard_world(SOAK_SHARDS, SOAK_AGENTS, SOAK_COLORS,
                                    SOAK_TOKENS, SOAK_ROUNDS),
    }


def test_e18_table_and_shape(results, benchmark, request):
    write_results(request, "e18_token_shards", results, seed=SEED)
    grid = results["sim/overhead"]
    rows = [[n, f"{grid[f'shards{n}']['p50'] * 1000:.1f}",
             f"{grid[f'shards{n}']['p99'] * 1000:.1f}",
             grid[f"shards{n}"]["forwards"],
             f"{grid[f'shards{n}']['forwards_per_request']:.2f}"]
            for n in GRID_SHARDS]
    print_table(
        "E18a: forwarding overhead — same workload, growing ring",
        ["shards", "p50 (ms)", "p99 (ms)", "forwards", "fwd/req"], rows)
    soak = results["sim/soak"]
    print_table(
        "E18b: soak — 16 shards, 2000 agents (virtual time)",
        ["requests", "granted", "p50 (ms)", "p99 (ms)", "req/s", "fwd/req"],
        [[soak["requests"], f"{soak['granted_frac']:.3f}",
          f"{soak['p50'] * 1000:.1f}", f"{soak['p99'] * 1000:.1f}",
          f"{soak['requests_per_s']:.0f}",
          f"{soak['forwards_per_request']:.2f}"]])

    # Shape claims. The bound is the tentpole: sharding the pool may
    # cost at most the extra prepare hop, never a latency cliff.
    assert grid["within_bound"] == 1.0
    # A single shard forwards nothing; a real ring forwards a lot.
    assert grid["shards1"]["forwards"] == 0
    assert grid["shards16"]["forwards"] > 0
    # The soak never loses or falsely kills a request.
    assert soak["granted_frac"] == 1.0
    assert soak["deadlocks"] == 0
    assert soak["p99"] >= soak["p50"] > 0

    benchmark(lambda: run_shard_world(4, 40, GRID_COLORS, GRID_TOKENS, 2))
