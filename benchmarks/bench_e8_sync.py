"""E8 — synchronization constructs across dapplets (paper §4.3).

Scenario A: a distributed barrier over N dapplets running R rounds;
metric: barrier rounds per virtual second vs N.

Scenario B: a distributed semaphore guarding a shared resource under
contention; metric: acquisitions per virtual second.

Shape claims: barrier round time is set by the slowest member's round
trip to the host, so rounds/s degrades gently (not linearly) with N on
a uniform network; semaphore throughput saturates at 1/(hold+RTT).
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro import Dapplet, World
from repro.net import ConstantLatency
from repro.services.sync import (
    DistributedBarrier,
    DistributedSemaphore,
    SyncHost,
)

ROUNDS = 20


class Node(Dapplet):
    kind = "node"


def run_barrier(parties: int, seed: int = 33):
    world = World(seed=seed, latency=ConstantLatency(0.01))
    host = SyncHost(world.dapplet(Node, "caltech.edu", "host"))
    finish = []

    def member(d):
        barrier = DistributedBarrier(d, host.pointer, "b", parties=parties)
        for _ in range(ROUNDS):
            yield barrier.arrive()
        finish.append(world.now)

    for i in range(parties):
        world.process(member(world.dapplet(Node, f"s{i}.edu", f"d{i}")))
    world.run()
    elapsed = max(finish)
    return {"rounds_per_s": ROUNDS / elapsed, "elapsed": elapsed}


def run_semaphore(contenders: int, hold: float = 0.01, seed: int = 34):
    world = World(seed=seed, latency=ConstantLatency(0.01))
    host = SyncHost(world.dapplet(Node, "caltech.edu", "host"))
    done = []
    EACH = 10

    def member(d):
        sem = DistributedSemaphore(d, host.pointer, "s", permits=1)
        for _ in range(EACH):
            yield sem.acquire()
            yield world.kernel.timeout(hold)
            sem.release()
        done.append(world.now)

    for i in range(contenders):
        world.process(member(world.dapplet(Node, f"s{i}.edu", f"d{i}")))
    world.run()
    elapsed = max(done)
    return {"acquisitions_per_s": contenders * EACH / elapsed}


@pytest.fixture(scope="module")
def results():
    parties = (2, 4, 8, 16)
    barrier = {n: run_barrier(n) for n in parties}
    contention = (1, 2, 4, 8)
    semaphore = {n: run_semaphore(n) for n in contention}
    return parties, barrier, contention, semaphore


def test_e8_barrier_scaling(results, benchmark):
    parties, barrier, _, _ = results
    rows = [[n, f"{barrier[n]['rounds_per_s']:.1f}",
             f"{barrier[n]['elapsed']:.3f}"] for n in parties]
    print_table(f"E8a: distributed barrier ({ROUNDS} rounds)",
                ["parties", "rounds/s", "elapsed (s)"], rows)
    # Shape: on a uniform network, round rate is nearly flat in N — the
    # barrier waits for the slowest member, and all are equally far.
    rates = [barrier[n]["rounds_per_s"] for n in parties]
    assert rates[0] < 1.6 * rates[-1]

    benchmark(run_barrier, 4)


def test_e8_semaphore_contention(results, benchmark):
    _, _, contention, semaphore = results
    rows = [[n, f"{semaphore[n]['acquisitions_per_s']:.1f}"]
            for n in contention]
    print_table("E8b: distributed semaphore (1 permit, 10 ms hold)",
                ["contenders", "acquisitions/s"], rows)
    # Shape: total throughput saturates near 1/(hold + RTT) = ~33/s.
    rates = [semaphore[n]["acquisitions_per_s"] for n in contention]
    assert all(r <= 34.0 for r in rates)
    assert rates[-1] > 0.8 * rates[1]  # contention does not collapse it

    benchmark(run_semaphore, 4)
