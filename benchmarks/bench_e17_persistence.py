"""E17 — persistence: WAL journaling cost, fold compaction, recovery.

Four measurements over the durable-state layer (``repro.store``):

* **Journal density** (deterministic): a fixed 240-mutation workload
  produces a byte-deterministic WAL; ops-per-KB is a pure function of
  the record framing + canonical-JSON codec, so any drift is a format
  change. Guarded by ``check_regression.py``.

* **Fold compaction** (deterministic): the same workload with periodic
  folding; the ratio of unfolded journal bytes to folded resident bytes
  (snapshot + live WAL tail) is the compaction win. Guarded.

* **Crash-recovery equivalence** (deterministic): the crash matrix as a
  metric — at every interesting crash offset, recovery must equal the
  exact mutation prefix below the cut. The guarded metric is the
  fraction of offsets where it does: anything under 1.0 is a recovery
  bug, so the tolerance is zero.

* **Wall-clock cost** (recorded, not gated): journaled mutation
  throughput in memory vs on disk (fsync-always vs fsync-never — the
  price of durability per op), and cold-recovery speed from a
  2000-record on-disk journal.

Run with ``--json DIR`` to emit ``BENCH_e17_persistence.json``.
"""

from __future__ import annotations

import tempfile
import time

import pytest

from benchmarks._util import print_table, write_results
from repro.dapplet.state import PersistentState
from repro.errors import BackendCrash
from repro.obs import Tracer
from repro.store import (
    FSYNC_ALWAYS,
    FSYNC_NEVER,
    CrashPoint,
    DurableState,
    FileBackend,
    MemoryBackend,
)
from repro.store.wal import interesting_offsets

SEED = 17
N_OPS = 240
FOLD_EVERY = 24
N_FILE_OPS = 120
N_RECOVERY_RECORDS = 2000


def apply_ops_one(state: PersistentState, i: int) -> None:
    """The ``i``-th mutation of the deterministic workload: a mix of
    sets, deletes and restores with varied value shapes (strings,
    bytes, tuples, nested dicts)."""
    region = state.region(f"r{i % 3}")
    if i % 11 == 7:
        region.delete(f"k{(i - 3) % 17}")
    elif i % 29 == 13:
        region.restore({f"k{j}": (j, f"v{j}") for j in range(i % 5)})
    else:
        region.set(f"k{i % 17}", {
            "i": i, "text": "x" * (i % 23),
            "blob": bytes([i % 256]) * (i % 7), "pair": (i, -i)})


def apply_ops(state: PersistentState, n: int) -> None:
    for i in range(n):
        apply_ops_one(state, i)


class _Host:
    """Minimal substrate stand-in: store tracing needs ``tracer``/``now``."""

    def __init__(self):
        self.tracer = None
        self.now = 0.0


def run_journal_density() -> dict:
    host = _Host()
    tracer = Tracer(categories=["store"], metrics_only=True).attach(host)
    backend = MemoryBackend()
    durable = DurableState(backend, name="d", snapshot_every=0,
                           substrate=host, node="bench")
    apply_ops(PersistentState(durable), N_OPS)
    wal_bytes = len(backend.read("d.wal"))
    summary = tracer.summary()
    return {
        "ops": N_OPS,
        "appends": durable.stats["appends"],
        "wal_bytes": wal_bytes,
        "bytes_per_op": wal_bytes / N_OPS,
        "ops_per_kb": N_OPS / (wal_bytes / 1024),
        "fsyncs": summary["histograms"]["store.fsync"]["count"],
    }


def run_fold_compaction() -> dict:
    flat = MemoryBackend()
    apply_ops(PersistentState(DurableState(flat, name="d",
                                           snapshot_every=0)), N_OPS)
    unfolded = len(flat.read("d.wal"))

    folded = MemoryBackend()
    durable = DurableState(folded, name="d", snapshot_every=FOLD_EVERY)
    apply_ops(PersistentState(durable), N_OPS)
    resident = len(folded.read("d.wal")) + len(folded.read("d.snap"))
    return {
        "unfolded_bytes": unfolded,
        "resident_bytes": resident,
        "appends": durable.stats["appends"],
        "folds": durable.stats["folds"],
        "compaction": unfolded / resident,
    }


def run_crash_recovery_equivalence() -> dict:
    """The crash matrix as a single guarded number."""
    golden_backend = MemoryBackend()
    golden = PersistentState(DurableState(golden_backend, name="d",
                                          snapshot_every=0))
    ends, prefix_states = [0], [golden.snapshot()]
    for i in range(N_OPS):
        apply_ops_one(golden, i)
        ends.append(len(golden_backend.read("d.wal")))
        prefix_states.append(golden.snapshot())
    full_wal = golden_backend.read("d.wal")

    offsets = interesting_offsets(full_wal)
    equal = torn = 0
    for offset in offsets:
        backend = MemoryBackend()
        backend.install_crash_point(CrashPoint(after_bytes=offset))
        state = PersistentState(DurableState(backend, name="d",
                                             snapshot_every=0))
        try:
            for i in range(N_OPS):
                apply_ops_one(state, i)
        except BackendCrash:
            pass
        backend.reset_crash()
        recovering = DurableState(backend, name="d")
        recovered = PersistentState(recovering)
        torn += recovering.stats["torn_tails"]
        expected = max(i for i, end in enumerate(ends) if end <= offset)
        if recovered.snapshot() == prefix_states[expected]:
            equal += 1
    return {
        "offsets": len(offsets),
        "torn_recoveries": torn,
        "equal": equal / len(offsets),
    }


def run_wall_journal(kind: str, fsync: str, n: int) -> dict:
    """Wall-clock journaled-mutation throughput."""
    with tempfile.TemporaryDirectory() as tmp:
        if kind == "mem":
            backend = MemoryBackend()
        else:
            backend = FileBackend(tmp)
        state = PersistentState(DurableState(backend, name="d",
                                             snapshot_every=0, fsync=fsync))
        start = time.perf_counter()
        for i in range(n):
            apply_ops_one(state, i)
        elapsed = time.perf_counter() - start
        if kind == "file":
            backend.close()
    return {"ops": n, "elapsed": elapsed, "ops_per_s": n / elapsed}


def run_wall_recovery(records: int) -> dict:
    """Cold recovery from an on-disk journal of ``records`` mutations."""
    with tempfile.TemporaryDirectory() as tmp:
        backend = FileBackend(tmp)
        state = PersistentState(DurableState(backend, name="d",
                                             snapshot_every=0,
                                             fsync=FSYNC_NEVER))
        for i in range(records):
            apply_ops_one(state, i)
        backend.close()
        cold = FileBackend(tmp)
        start = time.perf_counter()
        durable = DurableState(cold, name="d")
        recovered = PersistentState(durable)
        elapsed = time.perf_counter() - start
        assert recovered.snapshot() == state.snapshot()
        cold.close()
    return {"records": durable.stats["replayed"], "elapsed": elapsed,
            "records_per_s": durable.stats["replayed"] / elapsed}


@pytest.fixture(scope="module")
def results():
    return {
        "sim/wal": run_journal_density(),
        "sim/fold": run_fold_compaction(),
        "sim/recovery": run_crash_recovery_equivalence(),
        "mem/journal": run_wall_journal("mem", FSYNC_ALWAYS, N_OPS),
        "file/journal_fsync": run_wall_journal("file", FSYNC_ALWAYS,
                                               N_FILE_OPS),
        "file/journal_nofsync": run_wall_journal("file", FSYNC_NEVER,
                                                 N_OPS),
        "file/recovery": run_wall_recovery(N_RECOVERY_RECORDS),
    }


def test_e17_table_and_shape(results, benchmark, request):
    write_results(request, "e17_persistence", results, seed=SEED)
    wal, fold, rec = (results["sim/wal"], results["sim/fold"],
                      results["sim/recovery"])
    print_table(
        "E17a: journal density and fold compaction (deterministic)",
        ["ops", "WAL bytes", "bytes/op", "ops/KB", "folds", "compaction"],
        [[wal["ops"], wal["wal_bytes"], f"{wal['bytes_per_op']:.1f}",
          f"{wal['ops_per_kb']:.1f}", fold["folds"],
          f"{fold['compaction']:.2f}x"]])
    print_table(
        "E17b: crash matrix — recovery equals the prefix below the cut",
        ["crash offsets", "torn recoveries", "equal"],
        [[rec["offsets"], rec["torn_recoveries"],
          f"{rec['equal']:.3f}"]])
    rows = [[label, r["ops"], f"{r['ops_per_s']:.0f}"]
            for label, r in (("memory", results["mem/journal"]),
                             ("file, fsync always",
                              results["file/journal_fsync"]),
                             ("file, fsync never",
                              results["file/journal_nofsync"]))]
    print_table("E17c: journaled mutation throughput (wall clock)",
                ["backend", "ops", "ops/s"], rows)
    cold = results["file/recovery"]
    print_table("E17d: cold recovery from disk (wall clock)",
                ["records", "elapsed (s)", "records/s"],
                [[cold["records"], f"{cold['elapsed']:.3f}",
                  f"{cold['records_per_s']:.0f}"]])

    # Shape claims. The recovery equivalence is the tentpole: every
    # single crash offset recovers the exact prefix state.
    assert rec["equal"] == 1.0
    assert rec["torn_recoveries"] > 0       # the matrix did tear records
    assert fold["compaction"] > 1.5         # folding genuinely compacts
    # One fold per FOLD_EVERY journal records (no-op deletes journal
    # nothing, so the record count trails the op count slightly).
    assert fold["folds"] == fold["appends"] // FOLD_EVERY
    assert wal["fsyncs"] == wal["appends"]  # fsync-always: one per record
    # Every journaled record is replayed (no-op deletes journal none).
    assert results["file/recovery"]["records"] > 0.95 * N_RECOVERY_RECORDS
    # Durability has a price and skipping it shows: fsync-never beats
    # fsync-always on the file backend.
    assert (results["file/journal_nofsync"]["ops_per_s"]
            > results["file/journal_fsync"]["ops_per_s"])

    benchmark(run_journal_density)
