"""E19 — capability registry: grant-check overhead and churn soak.

Three measurements over ``repro.registry`` enforcement:

* **Session-establish overhead** (wall-clock, guarded as a bound): the
  same establish/terminate workload run in an unowned world (no
  registry checks anywhere — the pre-registry baseline) and in an
  owned world (initiator and member stamped with principals, one grant
  covering the member). Every Prepare on the owned path pays the
  session gate's cached ``registry.check``; the acceptance bound is
  that the cached check costs <= 10% of establish throughput. Rates
  are best-of-``REPS`` to shave scheduler noise; the guarded metric is
  the boolean ``within_bound``.

* **RPC-call overhead** (wall-clock, recorded): the same comparison on
  the RPC hot path — an owned exporter checks ``rpc.call:<method>``
  per invocation; an unowned one checks nothing.

* **Churn soak** (virtual time, seed-deterministic, guarded): a
  marketplace of consumer principals establishing sessions against
  provider-owned services while grants churn — every round one
  consumer is revoked and a fresh one granted. Every granted
  principal's establish must succeed, every revoked principal's must
  be denied at the capability gate (``granted_frac`` and ``denied_ok``
  are 1.0 or enforcement is broken), and the virtual-time establish
  throughput is seed-deterministic.

Run with ``--json DIR`` to emit ``BENCH_e19_registry.json``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._util import print_table, write_results
from repro.dapplet import Dapplet
from repro.errors import SessionRejected
from repro.net import ConstantLatency
from repro.registry import Registry
from repro.rpc import RemoteProxy, export
from repro.session import Initiator, SessionSpec
from repro.world import World

SEED = 19

#: Establish/terminate cycles per timed run, and repetitions per mode.
ESTABLISHES = 150
RPC_CALLS = 400
REPS = 3

#: The acceptance bound: cached grant checks may cost at most this
#: fraction of session-establish throughput.
OVERHEAD_BOUND = 0.10

#: Churn soak shape.
CHURN_SERVICES = 4
CHURN_CONSUMERS = 16
CHURN_ROUNDS = 6


class Member(Dapplet):
    kind = "member"

    def on_session_start(self, ctx):
        return None


def pair_spec():
    spec = SessionSpec("bench")
    spec.add_member("a", inboxes=("in",))
    spec.add_member("b", inboxes=("in",))
    spec.bind("a", "out", "b", "in")
    return spec


# -- a) session-establish overhead -------------------------------------------


def run_establishes(owned: bool, n: int = ESTABLISHES) -> dict:
    """One timed run; returns wall rate and registry cache counters."""
    world = World(seed=SEED, latency=ConstantLatency(0.01))
    if owned:
        alice = world.registry.principal("alice", org="acme")
        bob = world.registry.principal("bob", org="acme")
        world.registry.grant(bob, "acme/**", ("session.establish",))
        owner_a, owner_b = {"owner": bob}, {"owner": alice}
    else:
        owner_a = owner_b = {}
    world.dapplet(Member, "caltech.edu", "a", **owner_a)
    world.dapplet(Member, "rice.edu", "b", **owner_b)
    initiator = world.dapplet(Initiator, "caltech.edu", "init", **owner_a)

    def director():
        for _ in range(n):
            session = yield from initiator.establish(pair_spec(),
                                                     timeout=30.0)
            yield from session.terminate()

    p = world.process(director())
    start = time.perf_counter()
    world.run(until=p)
    elapsed = time.perf_counter() - start
    stats = world.registry.stats if owned else None
    return {
        "per_s": n / elapsed,
        "checks": (stats.allows + stats.denies) if stats else 0,
        "cache_hits": stats.cache_hits if stats else 0,
        "cache_misses": stats.cache_misses if stats else 0,
    }


def best_of(fn, *args):
    runs = [fn(*args) for _ in range(REPS)]
    return max(runs, key=lambda r: r["per_s"])


# -- b) RPC-call overhead ----------------------------------------------------


class Counter:
    def __init__(self):
        self.n = 0

    def read(self):
        return self.n


def run_rpc_calls(owned: bool, n: int = RPC_CALLS) -> dict:
    world = World(seed=SEED, latency=ConstantLatency(0.01))
    if owned:
        alice = world.registry.principal("alice", org="acme")
        bob = world.registry.principal("bob", org="acme")
        world.registry.grant(bob, "acme/**", ("rpc.call:read",))
        server_kw, client_kw = {"owner": alice}, {"owner": bob}
    else:
        server_kw = client_kw = {}
    server = world.dapplet(Member, "caltech.edu", "server", **server_kw)
    client = world.dapplet(Member, "rice.edu", "client", **client_kw)
    remote = export(server, Counter(), name="counter")
    proxy = RemoteProxy(client, remote.pointer)

    def caller():
        for _ in range(n):
            yield proxy.call("read", timeout=10.0)

    p = world.process(caller())
    start = time.perf_counter()
    world.run(until=p)
    elapsed = time.perf_counter() - start
    return {"per_s": n / elapsed}


# -- c) churn soak -----------------------------------------------------------


def run_churn_soak() -> dict:
    """Marketplace churn: consumers come and go; enforcement holds."""
    world = World(seed=SEED, latency=ConstantLatency(0.01))
    provider = world.registry.principal("provider", org="mkt")
    for i in range(CHURN_SERVICES):
        world.dapplet(Member, f"svc{i}.edu", f"svc{i}", owner=provider)

    def service_spec(i: int) -> SessionSpec:
        spec = SessionSpec("mkt")
        spec.add_member(f"svc{i % CHURN_SERVICES}", inboxes=("in",))
        spec.add_member("lobby", inboxes=("in",))
        spec.bind("lobby", "out", f"svc{i % CHURN_SERVICES}", "in")
        return spec

    world.dapplet(Member, "lobby.edu", "lobby")
    consumers = []
    for i in range(CHURN_CONSUMERS):
        principal = world.registry.principal(f"c{i}", org=f"org{i}")
        world.registry.grant(principal, "mkt/**", ("session.establish",))
        consumers.append(world.dapplet(
            Initiator, f"c{i}.edu", f"init{i}", owner=principal))

    granted = []
    denied = []
    unexpected = []

    def shopper(i: int, initiator):
        # Each consumer churns only its own grant, so an in-flight
        # establish of another principal can never straddle a
        # revocation — outcomes stay exactly predictable.
        has_grant = True
        for r in range(CHURN_ROUNDS):
            try:
                session = yield from initiator.establish(
                    service_spec(i + r), timeout=30.0)
            except SessionRejected as exc:
                (denied if not has_grant else unexpected).append(
                    (i, r, exc.reason))
            else:
                (granted if has_grant else unexpected).append((i, r))
                yield from session.terminate()
            if (r + i) % 3 == 2:  # periodic leave/rejoin churn
                if has_grant:
                    world.registry.revoke(f"c{i}")
                else:
                    world.registry.grant(f"c{i}", "mkt/**",
                                         ("session.establish",))
                has_grant = not has_grant
            yield world.kernel.timeout(0.2)

    for i, initiator in enumerate(consumers):
        world.process(shopper(i, initiator))
    world.run()
    attempts = CHURN_CONSUMERS * CHURN_ROUNDS
    stats = world.registry.stats
    return {
        "attempts": attempts,
        "granted": len(granted),
        "denied": len(denied),
        "granted_frac": (len(granted) + len(denied)) / attempts,
        "denied_ok": 1.0 if not unexpected else 0.0,
        "establishes_per_s": len(granted) / world.now,
        "virtual_duration": world.now,
        "checks": stats.allows + stats.denies,
        "cache_hit_rate": stats.cache_hits
        / max(1, stats.cache_hits + stats.cache_misses),
        "revokes": stats.revokes,
    }


# -- d) cached-vs-uncached microbenchmark ------------------------------------


def check_rates(rounds: int = 20000) -> dict:
    """Raw ``registry.check`` throughput, cold cache vs warm."""
    registry = Registry()
    registry.grant("bob", "acme/**", ("session.establish", "rpc.call:*"))
    args = ("bob", "acme/app/b", "session.establish")

    start = time.perf_counter()
    for _ in range(rounds):
        registry._cache.clear()
        registry.check(*args, owner="alice")
    cold = rounds / (time.perf_counter() - start)

    registry.check(*args, owner="alice")
    start = time.perf_counter()
    for _ in range(rounds):
        registry.check(*args, owner="alice")
    warm = rounds / (time.perf_counter() - start)
    return {"uncached_per_s": cold, "cached_per_s": warm,
            "cached_speedup": warm / cold}


@pytest.fixture(scope="module")
def results():
    baseline = best_of(run_establishes, False)
    enforced = best_of(run_establishes, True)
    overhead = max(0.0, 1.0 - enforced["per_s"] / baseline["per_s"])
    rpc_open = best_of(run_rpc_calls, False)
    rpc_gated = best_of(run_rpc_calls, True)
    rpc_overhead = max(0.0, 1.0 - rpc_gated["per_s"] / rpc_open["per_s"])
    return {
        "sim/establish": {
            "unowned_per_s": baseline["per_s"],
            "owned_per_s": enforced["per_s"],
            "overhead_frac": overhead,
            "within_bound": 1.0 if overhead <= OVERHEAD_BOUND else 0.0,
            "checks": enforced["checks"],
            "cache_hits": enforced["cache_hits"],
            "cache_misses": enforced["cache_misses"],
        },
        "sim/rpc": {
            "open_per_s": rpc_open["per_s"],
            "gated_per_s": rpc_gated["per_s"],
            "overhead_frac": rpc_overhead,
        },
        "sim/churn": run_churn_soak(),
        "check": check_rates(),
    }


def test_e19_table_and_shape(results, benchmark, request):
    write_results(request, "e19_registry", results, seed=SEED)
    est, rpc = results["sim/establish"], results["sim/rpc"]
    churn, check = results["sim/churn"], results["check"]
    print_table(
        "E19a: grant-check overhead on the hot paths (wall-clock)",
        ["path", "open /s", "gated /s", "overhead"],
        [["establish", f"{est['unowned_per_s']:.0f}",
          f"{est['owned_per_s']:.0f}", f"{est['overhead_frac']:.1%}"],
         ["rpc.call", f"{rpc['open_per_s']:.0f}",
          f"{rpc['gated_per_s']:.0f}", f"{rpc['overhead_frac']:.1%}"]])
    print_table(
        "E19b: marketplace churn soak (virtual time)",
        ["attempts", "granted", "denied", "est/s", "cache hit"],
        [[churn["attempts"], churn["granted"], churn["denied"],
          f"{churn['establishes_per_s']:.1f}",
          f"{churn['cache_hit_rate']:.3f}"]])
    print(f"  registry.check: cached {check['cached_per_s']:,.0f}/s "
          f"uncached {check['uncached_per_s']:,.0f}/s "
          f"({check['cached_speedup']:.1f}x)")

    # The acceptance bound: cached checks stay within 10% of the
    # unowned establish path.
    assert est["within_bound"] == 1.0
    # The hot path really is cached: a handful of misses, then hits.
    assert est["checks"] > 0
    assert est["cache_hits"] > 50 * est["cache_misses"]
    # Churn enforcement is exact: every outcome matched the grant
    # state, denials actually happened, and nothing leaked through.
    assert churn["granted_frac"] == 1.0
    assert churn["denied_ok"] == 1.0
    assert churn["denied"] > 0
    assert churn["revokes"] > 0
    # The cached check beats re-evaluating the grant walk.
    assert check["cached_speedup"] > 1.0

    benchmark(run_establishes, True, 20)
