"""E11 — timestamp conflict resolution vs opportunistic granting
(paper §4.2 + §4.1).

Scenario: one "big" requester needs two units of a resource; a stream
of "small" requesters each take one unit briefly. Under the
opportunistic FIFO policy, small requests keep slipping past the
waiting big one (starvation risk); under the paper's timestamp policy
("resolved in favor of the request with the earlier timestamp, ties to
the lower id"), the big request is served in arrival order.

Metrics: the big requester's max wait and completions, small-request
throughput.

Shape claims: the timestamp policy bounds the big requester's wait to a
small multiple of the hold time; opportunistic FIFO makes it wait for a
gap in the small stream (several times longer here, unboundedly longer
in the limit). The paper's no-starvation guarantee in action.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro import Dapplet, World
from repro.net import ConstantLatency
from repro.services.clocks import PrioritizedResources
from repro.services.tokens import TokenAgent, TokenCoordinator


class Node(Dapplet):
    kind = "node"


HOLD = 0.02
BIG_ROUNDS = 3
SMALL_ROUNDS = 40
N_SMALL = 3


def run_policy(policy: str, seed: int = 43):
    world = World(seed=seed, latency=ConstantLatency(0.002))
    host = world.dapplet(Node, "caltech.edu", "host")
    coordinator = TokenCoordinator(host, {"res": 2}, policy=policy)
    agents = {}
    for name in ["big"] + [f"small{i}" for i in range(N_SMALL)]:
        agents[name] = TokenAgent(
            world.dapplet(Node, f"{name}.edu", name), coordinator.pointer)
    big = PrioritizedResources(agents["big"], {"res": 2})
    small_done = []

    def big_worker():
        # Let the small stream saturate the pool first.
        yield world.kernel.timeout(2 * HOLD)
        for _ in range(BIG_ROUNDS):
            yield big.acquire()
            yield world.kernel.timeout(HOLD)
            big.release()
            yield world.kernel.timeout(HOLD)

    def small_worker(agent):
        # Continuous re-request: with N_SMALL > units there is always a
        # pending small request, so the pool never has 2 free under the
        # opportunistic policy until the stream runs dry.
        prio = PrioritizedResources(agent, {"res": 1})
        for _ in range(SMALL_ROUNDS):
            yield prio.acquire()
            yield world.kernel.timeout(HOLD / 2)
            prio.release()
        small_done.append(world.now)

    world.process(big_worker())
    for i in range(N_SMALL):
        world.process(small_worker(agents[f"small{i}"]))
    world.run()
    coordinator.check_conservation()
    return {
        "big_max_wait": big.max_wait,
        "big_done": big.acquisitions,
        "small_elapsed": max(small_done),
    }


@pytest.fixture(scope="module")
def results():
    return {p: run_policy(p) for p in ("fifo", "timestamp")}


def test_e11_table_and_shape(results, benchmark):
    rows = [[p, r["big_done"], f"{r['big_max_wait']*1000:.1f}",
             f"{r['small_elapsed']:.3f}"] for p, r in results.items()]
    print_table("E11: big-vs-small resource contention by grant policy",
                ["policy", "big acquisitions", "big max wait (ms)",
                 "small stream done (s)"], rows)

    fifo, ts = results["fifo"], results["timestamp"]
    # Both policies eventually serve everyone here (finite streams)...
    assert fifo["big_done"] == ts["big_done"] == BIG_ROUNDS
    # ...but the timestamp policy bounds the big requester's wait while
    # opportunistic FIFO makes it wait much longer.
    assert ts["big_max_wait"] < 0.5 * fifo["big_max_wait"]

    benchmark(run_policy, "timestamp")
