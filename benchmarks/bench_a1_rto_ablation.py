"""A1 (ablation) — retransmission-timeout sizing x recovery protocol.

The layer's default estimates the initial RTO as 4x the link's mean
latency (per destination, from the latency model). This ablation pits
that choice against fixed under- and over-estimates on a jittery,
lossy intercontinental link — and crosses the interesting arms with the
recovery protocol: pure cumulative ACKs (the original seed protocol)
vs the SACK + fast-retransmit default.

Measured shape (recorded in EXPERIMENTS.md), cumulative arm: spurious
retransmits fall monotonically as the RTO grows toward the estimated
default; delivery latency rises monotonically once the RTO exceeds the
RTT, because every loss stalls the FIFO stream for the full timeout,
and grossly over-sizing is the worst of all worlds (seconds-long stalls
*and* pointless retransmission of the queue behind them). SACK arm:
duplicate-ACK-driven fast retransmit decouples loss recovery from the
timer, so the over-sizing pathology mostly vanishes — recovery latency
is set by the dup-ack round trip, the RTO only backstops losses at the
very tail of the stream. Adaptive RTO estimation (Jacobson, Karn-gated
samples from ack-echoed timestamps) is the robust partner to SACK: it
tracks the channel without hand-tuning, while in the cumulative arm a
single unlucky loss x backoff chain can still dominate the tail.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro import Dapplet, World
from repro.messages import Text
from repro.net import FaultPlan, GeoLatency


class Node(Dapplet):
    kind = "node"


N = 150
DROP = 0.2


def run_rto(rto: "float | None", seed: int = 81, mode: str = "static", *,
            sack: bool = True):
    world = World(seed=seed, latency=GeoLatency(),
                  faults=FaultPlan(drop_prob=DROP, reorder_jitter=0.02),
                  endpoint_options={"rto_initial": rto, "max_retries": 60,
                                    "rto_mode": mode, "sack": sack,
                                    "ack_delay": 0.01 if sack else 0.0})
    src = world.dapplet(Node, "caltech.edu", "src")
    dst = world.dapplet(Node, "sydney.edu.au", "dst")
    inbox = dst.create_inbox(name="in")
    arrivals = {}
    inbox.delivery_hooks.append(
        lambda m: (arrivals.setdefault(int(m.text), world.now), m)[1])
    out = src.create_outbox()
    out.add(inbox.named_address)
    send_times = {}

    def paced_sender():
        # A paced stream (not a burst): later packets benefit from what
        # earlier acks taught the adaptive estimator.
        for i in range(N):
            send_times[i] = world.now
            out.send(Text(str(i)))
            yield world.kernel.timeout(0.05)

    world.process(paced_sender())
    world.run()
    assert len(arrivals) == N
    latencies = sorted(arrivals[i] - send_times[i] for i in range(N))
    return {
        "mean": sum(latencies) / N,
        "p95": latencies[int(0.95 * N)],
        "retransmits": src.endpoint.stats.data_retransmitted,
        "datagrams": world.network.stats.sent,
    }


CONFIGS = [
    ("tiny (20ms)", 0.02),
    ("small (80ms)", 0.08),
    ("estimated", None),   # the default: 4x mean link latency
    ("huge (3s)", 3.0),
]


@pytest.fixture(scope="module")
def results():
    table = {}
    for name, rto in CONFIGS:
        table[(name, "cum")] = run_rto(rto, sack=False)
    # The recovery-protocol cross: does SACK rescue a badly sized RTO?
    table[("estimated", "sack")] = run_rto(None, sack=True)
    table[("huge (3s)", "sack")] = run_rto(3.0, sack=True)
    table[("adaptive", "cum")] = run_rto(None, mode="adaptive", sack=False)
    table[("adaptive", "sack")] = run_rto(None, mode="adaptive", sack=True)
    return table


def test_a1_table_and_shape(results, benchmark):
    rows = [[name, proto, f"{r['mean']*1000:.0f}", f"{r['p95']*1000:.0f}",
             r["retransmits"], r["datagrams"]]
            for (name, proto), r in results.items()]
    print_table(f"A1: RTO sizing x recovery protocol, caltech->sydney, "
                f"{DROP:.0%} loss ({N} msgs)",
                ["rto", "proto", "mean lat (ms)", "p95 lat (ms)",
                 "retransmits", "datagrams"], rows)

    # -- cumulative arm: the seed protocol's RTO-sizing trade-off -------
    estimated = results[("estimated", "cum")]
    # Spurious retransmits fall as the RTO grows toward the estimate;
    # tail latency rises monotonically past the RTT.
    assert results[("tiny (20ms)", "cum")]["retransmits"] > \
        results[("small (80ms)", "cum")]["retransmits"] > \
        estimated["retransmits"]
    p95 = [results[(name, "cum")]["p95"] for name, _ in CONFIGS]
    assert p95 == sorted(p95)
    # Grossly over-sizing is the worst of all worlds: every loss stalls
    # the FIFO stream for seconds, and the packets queueing up behind
    # the stall get pointlessly retransmitted.
    huge = results[("huge (3s)", "cum")]
    assert huge["p95"] > 5 * estimated["p95"]
    assert huge["retransmits"] > estimated["retransmits"]

    # -- SACK arm: fast retransmit decouples recovery from the timer ----
    # At a well-sized RTO, SACK dominates cumulative on every axis.
    est_sack = results[("estimated", "sack")]
    for axis in ("mean", "p95", "retransmits", "datagrams"):
        assert est_sack[axis] < estimated[axis]
    # The over-sizing pathology mostly vanishes: recovery latency is set
    # by the dup-ack round trip, not the 3s timer, and the buffered tail
    # stays off the wire entirely.
    huge_sack = results[("huge (3s)", "sack")]
    assert huge_sack["mean"] < huge["mean"] / 3
    assert huge_sack["retransmits"] < estimated["retransmits"]

    # -- adaptive RTO: the robust partner to SACK -----------------------
    # Jacobson estimation with Karn-gated samples tracks the channel
    # without hand-tuning; paired with SACK it beats the hand-estimated
    # static default of the seed protocol on every axis.
    adaptive_sack = results[("adaptive", "sack")]
    for axis in ("mean", "p95", "retransmits", "datagrams"):
        assert adaptive_sack[axis] < estimated[axis]
    # ... and it beats adaptive-over-cumulative too: without selective
    # acks one unlucky loss x backoff chain still dominates the tail.
    adaptive_cum = results[("adaptive", "cum")]
    assert adaptive_sack["mean"] < adaptive_cum["mean"]
    assert adaptive_sack["retransmits"] < adaptive_cum["retransmits"]

    benchmark(run_rto, None)
