"""A1 (ablation) — retransmission-timeout sizing in the ordering layer.

The layer's default estimates the initial RTO as 4x the link's mean
latency (per destination, from the latency model). This ablation pits
that choice against fixed under- and over-estimates on a jittery,
lossy intercontinental link.

Measured shape (recorded in EXPERIMENTS.md): spurious retransmits fall
monotonically as the RTO grows, reaching the loss-driven floor at the
estimated default; delivery latency rises monotonically once the RTO
exceeds the RTT, because every loss stalls the FIFO stream for the full
timeout. The estimated default minimizes wasted datagrams; an
aggressive RTO buys tail latency with bandwidth — a real trade-off the
simulator makes visible (it does not model congestion, which is what
makes TCP-style conservatism pay off on real networks).
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro import Dapplet, World
from repro.messages import Text
from repro.net import FaultPlan, GeoLatency


class Node(Dapplet):
    kind = "node"


N = 150
DROP = 0.2


def run_rto(rto: "float | None", seed: int = 81, mode: str = "static"):
    world = World(seed=seed, latency=GeoLatency(),
                  faults=FaultPlan(drop_prob=DROP, reorder_jitter=0.02),
                  endpoint_options={"rto_initial": rto, "max_retries": 60,
                                    "rto_mode": mode})
    src = world.dapplet(Node, "caltech.edu", "src")
    dst = world.dapplet(Node, "sydney.edu.au", "dst")
    inbox = dst.create_inbox(name="in")
    arrivals = {}
    inbox.delivery_hooks.append(
        lambda m: (arrivals.setdefault(int(m.text), world.now), m)[1])
    out = src.create_outbox()
    out.add(inbox.named_address)
    send_times = {}

    def paced_sender():
        # A paced stream (not a burst): later packets benefit from what
        # earlier acks taught the adaptive estimator.
        for i in range(N):
            send_times[i] = world.now
            out.send(Text(str(i)))
            yield world.kernel.timeout(0.05)

    world.process(paced_sender())
    world.run()
    assert len(arrivals) == N
    latencies = sorted(arrivals[i] - send_times[i] for i in range(N))
    return {
        "mean": sum(latencies) / N,
        "p95": latencies[int(0.95 * N)],
        "retransmits": src.endpoint.stats.data_retransmitted,
        "datagrams": world.network.stats.sent,
    }


CONFIGS = [
    ("tiny (20ms)", 0.02),
    ("small (80ms)", 0.08),
    ("estimated", None),   # the default: 4x mean link latency
    ("huge (3s)", 3.0),
]


@pytest.fixture(scope="module")
def results():
    table = {name: run_rto(rto) for name, rto in CONFIGS}
    table["adaptive"] = run_rto(None, mode="adaptive")
    return table


def test_a1_table_and_shape(results, benchmark):
    rows = [[name, f"{r['mean']*1000:.0f}", f"{r['p95']*1000:.0f}",
             r["retransmits"], r["datagrams"]]
            for name, r in results.items()]
    print_table(f"A1: RTO sizing on caltech->sydney, {DROP:.0%} loss "
                f"({N} msgs)",
                ["rto", "mean lat (ms)", "p95 lat (ms)", "retransmits",
                 "datagrams"], rows)

    # Adaptive RTO (Jacobson estimation fed by echo timestamps, the
    # TCP-timestamps trick) converges to the channel's real RTT and
    # dominates the static estimate on every axis.
    adaptive = results["adaptive"]
    estimated = results["estimated"]
    assert adaptive["p95"] < estimated["p95"]
    assert adaptive["retransmits"] <= estimated["retransmits"]
    assert adaptive["datagrams"] <= estimated["datagrams"]

    # Static configs: spurious retransmits fall as the RTO grows toward
    # the estimate; tail latency rises monotonically past the RTT.
    assert results["tiny (20ms)"]["retransmits"] > \
        results["small (80ms)"]["retransmits"] > estimated["retransmits"]
    p95 = [results[name]["p95"] for name, _ in CONFIGS]
    assert p95 == sorted(p95)
    # Grossly over-sizing is the worst of all worlds: every loss stalls
    # the FIFO stream for seconds, and the packets queueing up behind
    # the stall get pointlessly retransmitted (no selective acks).
    huge = results["huge (3s)"]
    assert huge["p95"] > 5 * estimated["p95"]
    assert huge["retransmits"] > estimated["retransmits"]

    benchmark(run_rto, None)
