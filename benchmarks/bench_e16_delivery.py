"""E16 — delivery classes: pay for exactly the reliability you need.

Two scenarios compare the per-outbox delivery classes the endpoint now
speaks (RELIABLE / UNRELIABLE / RELIABLE_SKIP; see
``docs/PROTOCOLS.md``):

**Throughput (unpaced burst, no loss).** One sender fires N messages at
one receiver. The RELIABLE row pays for acknowledgements, the sliding
window and retransmission state; the UNRELIABLE row is fire-and-forget
DATA frames with a sequence stamp. On the virtual-time simulator the
unreliable burst lands as fast as the network carries it, while the
reliable burst is gated by window growth and ack round trips — the
shape claim is UNRELIABLE ≥ 2x RELIABLE messages/s. The asyncio row
(real UDP loopback, smaller N) is recorded for inspection, not gated:
wall-clock numbers are machine noise, and loopback may shed unreliable
bursts at the socket buffer.

**Tail latency under loss (paced stream, 5% drop).** A paced stream
where every dropped DATA frame blocks the FIFO until repaired. RELIABLE
repairs by retransmission after the (static) 0.25s RTO, so the p99
delivery latency absorbs a full RTO. RELIABLE_SKIP abandons the packet
at a 0.05s skip timeout and advances the receiver past the hole — the
survivors' p99 stays near skip-timeout scale. Shape claim: the skip
stream's p99 is strictly below the reliable stream's, at the price of
the abandoned messages (counted).

``check_regression.py`` guards the simulator-deterministic ratios
(``unreliable_speedup``, ``skip_p99_advantage``) against the checked-in
baseline.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table, write_results
from repro.net import (RELIABLE, RELIABLE_SKIP, UNRELIABLE, ConstantLatency,
                       Endpoint, FaultPlan, NodeAddress)
from repro.runtime import AsyncioSubstrate, SimSubstrate

HUB = NodeAddress("hub.edu", 1000)
SRC = NodeAddress("src.edu", 1000)

N_SIM = 2000
N_AIO = 300
N_LAT = 300
LAT_PACE = 0.02
LAT_DROP = 0.05
LAT_RTO = 0.25
LAT_SKIP = 0.05


def run_tput(kind: str, delivery: str, *, n: int, seed: int = 11,
             wall_timeout: float | None = None) -> dict:
    """One unpaced n-message burst; msgs/s of substrate time."""
    if kind == "sim":
        substrate = SimSubstrate(seed=seed, latency=ConstantLatency(0.005))
    else:
        substrate = AsyncioSubstrate(seed=seed)
    try:
        recv = Endpoint(substrate, substrate.datagrams, HUB, rto_initial=0.1,
                        recv_window=64000)
        send = Endpoint(substrate, substrate.datagrams, SRC, rto_initial=0.1,
                        delivery=delivery, cwnd_initial=4096,
                        recv_window=64000)
        delivered = [0]
        last = [0.0]

        def deliver(payload, addr):
            delivered[0] += 1
            last[0] = substrate.now

        recv.register_inbox(0, deliver)
        start = substrate.now
        for i in range(n):
            send.send(HUB.inbox(0), f"{i:06d}", "bench")
        # Run to quiescence: counts whatever actually landed (loopback
        # may shed part of an unreliable burst) and times the last
        # delivery, not the trailing ack/timer chatter.
        if wall_timeout is not None:
            substrate.run(wall_timeout=wall_timeout)
        else:
            substrate.run()
        elapsed = last[0] - start
        return {
            "delivered": delivered[0],
            "msgs_per_s": (delivered[0] / elapsed) if elapsed > 0 else 0.0,
        }
    finally:
        substrate.close()


def run_latency(delivery: str, *, n: int = N_LAT, seed: int = 7) -> dict:
    """A paced stream under loss; per-message delivery latency tail."""
    substrate = SimSubstrate(seed=seed, latency=ConstantLatency(0.02),
                             faults=FaultPlan(drop_prob=LAT_DROP))
    try:
        recv = Endpoint(substrate, substrate.datagrams, HUB,
                        rto_initial=LAT_RTO)
        send = Endpoint(substrate, substrate.datagrams, SRC,
                        rto_initial=LAT_RTO, delivery=delivery,
                        skip_timeout=LAT_SKIP)
        sent_at: dict[str, float] = {}
        lats: list[float] = []
        recv.register_inbox(
            0, lambda payload, addr: lats.append(
                substrate.now - sent_at[payload]))

        def producer():
            for i in range(n):
                key = f"{i:06d}"
                sent_at[key] = substrate.now
                send.send(HUB.inbox(0), key, "bench")
                yield substrate.timeout(LAT_PACE)

        substrate.process(producer())
        substrate.run()
        lats.sort()
        return {
            "delivered": len(lats),
            "abandoned": n - len(lats),
            "p50": lats[len(lats) // 2],
            "p99": lats[int(len(lats) * 0.99) - 1],
            "max": lats[-1],
            "holes_skipped": recv.stats.holes_skipped,
        }
    finally:
        substrate.close()


@pytest.fixture(scope="module")
def results():
    table = {}
    for delivery in (RELIABLE, UNRELIABLE):
        table[("sim", delivery)] = run_tput("sim", delivery, n=N_SIM)
        table[("aio", delivery)] = run_tput("aio", delivery, n=N_AIO,
                                            wall_timeout=60)
    table[("lat", RELIABLE)] = run_latency(RELIABLE)
    table[("lat", RELIABLE_SKIP)] = run_latency(RELIABLE_SKIP)
    return table


def test_e16_table_and_shape(results, benchmark, request):
    table = results
    rel, unrel = table[("sim", RELIABLE)], table[("sim", UNRELIABLE)]
    lat_rel = table[("lat", RELIABLE)]
    lat_skip = table[("lat", RELIABLE_SKIP)]
    speedup = unrel["msgs_per_s"] / rel["msgs_per_s"]
    advantage = lat_rel["p99"] / lat_skip["p99"]

    write_results(request, "e16_delivery", {
        "sim/tput": {
            "reliable_msgs_per_s": rel["msgs_per_s"],
            "unreliable_msgs_per_s": unrel["msgs_per_s"],
            "unreliable_speedup": speedup,
        },
        "sim/lat": {
            "reliable_p99": lat_rel["p99"],
            "skip_p99": lat_skip["p99"],
            "skip_p99_advantage": advantage,
            "skip_abandoned": lat_skip["abandoned"],
            "skip_holes": lat_skip["holes_skipped"],
        },
        "aio/tput": {
            "reliable_msgs_per_s": table[("aio", RELIABLE)]["msgs_per_s"],
            "unreliable_msgs_per_s": table[("aio", UNRELIABLE)]["msgs_per_s"],
            "reliable_delivered": table[("aio", RELIABLE)]["delivered"],
            "unreliable_delivered": table[("aio", UNRELIABLE)]["delivered"],
        },
    }, seed=11)

    rows = [["sim tput", N_SIM, f"{rel['msgs_per_s']:.0f}",
             f"{unrel['msgs_per_s']:.0f}", f"{speedup:.1f}x", "-", "-"],
            ["aio tput", N_AIO,
             f"{table[('aio', RELIABLE)]['msgs_per_s']:.0f}",
             f"{table[('aio', UNRELIABLE)]['msgs_per_s']:.0f}", "-", "-",
             "-"],
            ["sim lat p99", N_LAT, f"{lat_rel['p99'] * 1000:.0f}ms",
             f"{lat_skip['p99'] * 1000:.0f}ms", f"{advantage:.1f}x",
             lat_skip["abandoned"], lat_skip["holes_skipped"]]]
    print_table(
        "E16: delivery classes — reliable vs unreliable vs reliable-skip",
        ["row", "msgs", "reliable", "unrel/skip", "ratio", "abandoned",
         "holes"], rows)

    # Shape: the unreliable burst clears at least twice the reliable
    # throughput on the simulator (no acks, no window to grow).
    assert rel["delivered"] == N_SIM and unrel["delivered"] == N_SIM
    assert speedup >= 2.0
    # Shape: under 5% loss the skip stream's p99 stays strictly below
    # the reliable stream's (which eats a full 0.25s RTO per repair) —
    # the skip timeout bounds head-of-line blocking.
    assert lat_rel["delivered"] == N_LAT  # reliable loses nothing
    assert lat_skip["abandoned"] > 0      # skip pays in dropped messages
    assert lat_skip["holes_skipped"] > 0
    assert lat_skip["p99"] < lat_rel["p99"]
    assert lat_skip["p99"] <= LAT_SKIP + 3 * 0.02 + LAT_PACE

    benchmark(run_tput, "sim", UNRELIABLE, n=N_SIM)
