"""E9 — persistent state and session interference (paper §2.2).

Scenario: K scheduling-style sessions arrive concurrently over the same
pool of dapplets. In the *disjoint* condition each session declares its
own state region; in the *overlapping* condition all write the same
region, so the managers must never run two at once (rejection + retry).
Metric: virtual time to complete all K sessions; the interference
monitor asserts the exclusion invariant throughout.

Shape claims: disjoint sessions run concurrently (total time ~ one
session); overlapping sessions serialize (total time ~ K sessions); no
conflicting overlap is ever observed.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro import Dapplet, Initiator, SessionRejected, SessionSpec, World
from repro.net import ConstantLatency
from repro.session import InterferenceMonitor


class Worker(Dapplet):
    kind = "worker"

    def on_session_start(self, ctx):
        def busy():
            # A session does some work against its regions, then idles
            # until the initiator tears it down.
            region = ctx.region(list(ctx.regions)[0])
            region.set("touched-by", ctx.session_id)
            yield self.world.kernel.timeout(ctx.params["work"])

        return busy()


WORK = 0.5
K = 6


def run_condition(overlapping: bool, seed: int = 37,
                  wait_for_regions: bool = False):
    world = World(seed=seed, latency=ConstantLatency(0.01))
    monitor = InterferenceMonitor()
    world.interference_monitor = monitor
    workers = [world.dapplet(Worker, f"s{i}.edu", f"w{i}") for i in range(3)]
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    finished = []

    datagrams_before = world.network.stats.sent

    def one_session(k):
        region = "shared" if overlapping else f"private{k}"
        spec = SessionSpec("interference-bench", params={"work": WORK})
        for w in workers:
            spec.add_member(w.name, regions={region: "rw"})
        while True:
            try:
                session = yield from initiator.establish(
                    spec, timeout=120.0, wait_for_regions=wait_for_regions)
                break
            except SessionRejected:
                yield world.kernel.timeout(0.1 + 0.01 * k)
        yield world.kernel.timeout(WORK)
        yield from session.terminate()
        finished.append(world.now)

    for k in range(K):
        world.process(one_session(k))
    world.run()
    assert len(finished) == K
    return {"total": max(finished), "max_concurrent": monitor.max_concurrent,
            "activations": monitor.activations,
            "datagrams": world.network.stats.sent - datagrams_before}


@pytest.fixture(scope="module")
def results():
    return {
        "disjoint": run_condition(overlapping=False),
        "overlapping": run_condition(overlapping=True),
        "overlapping+queued": run_condition(overlapping=True,
                                            wait_for_regions=True),
    }


def test_e9_table_and_shape(results, benchmark):
    rows = [[name, f"{r['total']:.3f}", r["max_concurrent"],
             r["activations"], r["datagrams"]]
            for name, r in results.items()]
    print_table(f"E9: {K} concurrent sessions over shared dapplets "
                f"({WORK}s of work each)",
                ["regions", "total time (s)", "max concurrent",
                 "activations", "datagrams"], rows)

    disjoint = results["disjoint"]
    overlap = results["overlapping"]
    queued = results["overlapping+queued"]
    # Shape: disjoint sessions overlap heavily; conflicting ones never do.
    assert disjoint["max_concurrent"] >= K - 1
    assert overlap["max_concurrent"] == 1
    assert queued["max_concurrent"] == 1
    # Shape: serialization costs roughly K times one session's span.
    assert overlap["total"] > (K - 1) * WORK
    assert queued["total"] > (K - 1) * WORK
    assert disjoint["total"] < 2.5 * WORK
    # Shape: queued admission saves the reject/retry control traffic.
    assert queued["datagrams"] < overlap["datagrams"]

    benchmark(run_condition, False)
