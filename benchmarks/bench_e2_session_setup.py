"""E2 — Figure 2: initiator-driven session setup.

Scenario: an initiator links N dapplets spread over the WAN into a
session and tears it down. Metrics: establishment latency (virtual) and
control datagrams vs N.

Shape claims: control messages grow linearly in N (prepare + accept +
commit + ready per member); latency stays near one WAN round trip plus
a commit round — NOT linear in N — because the link-up fans out in
parallel.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro import Dapplet, Initiator, SessionSpec
from repro.net import GeoLatency
from repro.world import World

HOSTS = ["caltech.edu", "rice.edu", "utk.edu", "mit.edu"]


class Member(Dapplet):
    kind = "member"


def run_setup(n: int, seed: int = 3):
    world = World(seed=seed, latency=GeoLatency())
    names = [f"m{i}" for i in range(n)]
    for i, name in enumerate(names):
        world.dapplet(Member, HOSTS[i % len(HOSTS)], name)
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec = SessionSpec("setup-bench")
    for name in names:
        spec.add_member(name, inboxes=("in",))
    hub = names[0]
    for other in names[1:]:
        spec.bind(hub, "bcast", other, "in")
    box = {}

    def driver():
        before = world.network.stats.sent
        t0 = world.now
        session = yield from initiator.establish(spec)
        box["latency"] = world.now - t0
        box["datagrams"] = world.network.stats.sent - before
        t0 = world.now
        yield from session.terminate()
        box["teardown"] = world.now - t0

    world.run(until=world.process(driver()))
    world.run()
    return box


@pytest.fixture(scope="module")
def results():
    sizes = (2, 4, 8, 16, 32)
    return sizes, {n: run_setup(n) for n in sizes}


def test_e2_table_and_shape(results, benchmark):
    sizes, table = results
    rows = [[n, f"{table[n]['latency']:.3f}", table[n]["datagrams"],
             f"{table[n]['datagrams'] / n:.1f}",
             f"{table[n]['teardown']:.3f}"] for n in sizes]
    print_table("E2: session setup vs members",
                ["members", "setup (s)", "ctl dgrams", "dgrams/member",
                 "teardown (s)"], rows)

    # Shape: datagrams per member roughly constant (linear total).
    per_member = [table[n]["datagrams"] / n for n in sizes]
    assert max(per_member) < 2.5 * min(per_member)
    # Shape: latency sub-linear in N — 16x the members costs well under
    # 4x the setup time (parallel fan-out).
    assert table[32]["latency"] < 4 * table[2]["latency"]

    benchmark(run_setup, 8)
