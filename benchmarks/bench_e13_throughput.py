"""E13 — flow control: bounded receiver queues at undiminished goodput.

Scenario: one producer fires a 400-message burst at one slow consumer
(paced drain), with the transport's sliding-window layer on vs off —
the off mode being the transmit-immediately protocol this repo shipped
before flow control existed. Run on the virtual-time simulator and,
smaller, over real UDP sockets. Metrics: peak receiver queue depth,
goodput (delivered messages per second of substrate time), stall /
resume / probe / batch counters, and the window events in the trace.

Shape claims: with flow control **off** the whole burst lands in the
receiver's queue (peak ≈ N); with it **on** the peak is bounded by the
window geometry (recv_window worth of messages plus the racing
in-flight packets), an order of magnitude below N — while goodput stays
within a whisker of the unthrottled run, because the consumer's drain
rate, not the window, is the bottleneck. The stall/resume/probe events
that prove the machinery engaged are visible in the exported trace.

A third **wire** row removes the consumer pacing entirely (flow on,
``pace=0``): the paced rows measure the protocol against a
drain-limited consumer (goodput pinned near 1/PACE by construction),
so the wire row is the one that exposes the transport itself — framing,
batching, window growth — as the bottleneck. It is the row that moved
when the JSON wire became struct-packed binary frames.

``benchmarks/check_regression.py`` compares the flow-on and wire-mode
simulator goodputs in ``BENCH_e13_throughput.json`` against the
checked-in baseline (``benchmarks/baselines/``) and fails CI on a >20%
drop; the simulator metrics are virtual-time and seed-deterministic,
so only a protocol change can move them.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table, write_results
from repro.mailbox import Inbox, Outbox
from repro.messages import Text
from repro.net import ConstantLatency, NodeAddress
from repro.net.transport import Endpoint
from repro.obs import Tracer
from repro.runtime import AsyncioSubstrate, SimSubstrate

HUB = NodeAddress("hub.edu", 1000)
SRC = NodeAddress("src.edu", 1000)

N_SIM = 400
N_AIO = 60
N_SIM_WIRE = 2000
N_AIO_WIRE = 400
PACE = 0.002  # consumer service time per message, seconds


def run_burst(kind: str, flow: bool, *, n: int, seed: int = 11,
              pace: float = PACE, cwnd_initial: int = 256,
              recv_window: int = 2000,
              tracer: "Tracer | None" = None,
              wall_timeout: float | None = None) -> dict:
    """One burst N producer->consumer; returns the metric row."""
    if kind == "sim":
        substrate = SimSubstrate(seed=seed, latency=ConstantLatency(0.005))
    else:
        substrate = AsyncioSubstrate(seed=seed)
    try:
        if tracer is not None:
            tracer.attach(substrate)
        eb = Endpoint(substrate, substrate.datagrams, HUB, rto_initial=0.1,
                      flow_control=flow, recv_window=recv_window)
        ea = Endpoint(substrate, substrate.datagrams, SRC, rto_initial=0.1,
                      flow_control=flow, cwnd_initial=cwnd_initial)
        inbox = Inbox(substrate, eb, 0)
        peak = [0]
        inbox.delivery_hooks.append(
            lambda m: (peak.__setitem__(0, max(peak[0], len(inbox) + 1)), m)[1])
        outbox = Outbox(substrate, ea, 0)
        outbox.add(inbox.address)
        finished = substrate.event()

        def consumer():
            for _ in range(n):
                yield inbox.receive()
                if pace > 0:
                    yield substrate.timeout(pace)
            finished.succeed(substrate.now)

        substrate.process(consumer())
        start = substrate.now
        for i in range(n):
            outbox.send(Text(f"{i:06d}"))
        if wall_timeout is not None:
            end = substrate.run(finished, wall_timeout=wall_timeout)
            substrate.run(wall_timeout=wall_timeout)  # drain stray acks
        else:
            substrate.run(finished)
            substrate.run()
            end = finished.value
        elapsed = end - start
        stats = ea.stats
        return {
            "delivered": inbox.messages_received,
            "peak_queue": peak[0],
            "goodput": (inbox.messages_received / elapsed) if elapsed else 0.0,
            "stalls": stats.window_stalls,
            "resumes": stats.window_resumes,
            "probes": stats.window_probes,
            "batches": stats.batches_sent,
            "batched_payloads": stats.batched_payloads,
            "window_updates": eb.stats.window_updates,
        }
    finally:
        substrate.close()


def run_wire(kind: str, *, n: int, wall_timeout: float | None = None) -> dict:
    """The transport-limited row: flow control on, no consumer pacing,
    a window wide enough that batching carries the burst."""
    return run_burst(kind, True, n=n, pace=0.0, cwnd_initial=4096,
                     recv_window=64000, wall_timeout=wall_timeout)


@pytest.fixture(scope="module")
def results():
    table = {}
    for flow in (False, True):
        table[("sim", flow)] = run_burst("sim", flow, n=N_SIM)
        table[("aio", flow)] = run_burst("aio", flow, n=N_AIO,
                                         wall_timeout=60)
    table[("sim", "wire")] = run_wire("sim", n=N_SIM_WIRE)
    table[("aio", "wire")] = run_wire("aio", n=N_AIO_WIRE, wall_timeout=60)
    return table


def test_e13_table_and_shape(results, benchmark, request):
    table = results
    # The window events must be visible in an exported trace.
    tracer = Tracer(categories=["ep"])
    run_burst("sim", True, n=N_SIM, tracer=tracer)
    trace = tracer.to_jsonl()
    for name in ("stall", "resume", "wnd_update"):
        assert tracer.select("ep", name), f"trace must show {name} events"
    assert '"ev":"stall"' in trace

    def mode_name(flow):
        if flow == "wire":
            return "wire"
        return "flow" if flow else "noflow"

    write_results(request, "e13_throughput",
                  {f"{kind}/{mode_name(flow)}": metrics
                   for (kind, flow), metrics in table.items()},
                  seed=11)
    rows = []
    for kind, n in (("sim", N_SIM), ("aio", N_AIO)):
        off, on = table[(kind, False)], table[(kind, True)]
        wire = table[(kind, "wire")]
        rows.append([kind, n, off["peak_queue"], on["peak_queue"],
                     f"{off['goodput']:.0f}", f"{on['goodput']:.0f}",
                     f"{wire['goodput']:.0f}",
                     on["stalls"], on["batches"], on["window_updates"]])
    print_table("E13: burst onto a slow consumer, flow control off vs on",
                ["substrate", "msgs", "peak q (off)", "peak q (on)",
                 "goodput off", "goodput on", "goodput wire", "stalls",
                 "batches", "wnd updates"], rows)

    for kind, n in (("sim", N_SIM), ("aio", N_AIO)):
        off, on = table[(kind, False)], table[(kind, True)]
        assert off["delivered"] == n and on["delivered"] == n
        # Off: the burst swamps the queue. On: bounded by the window.
        assert off["peak_queue"] > 0.8 * n
        assert on["peak_queue"] < 0.4 * n
        assert on["peak_queue"] < off["peak_queue"]
        # Backpressure engaged...
        assert on["stalls"] >= 1 and on["resumes"] >= 1
        assert on["window_updates"] >= 1
        # ...at equal-or-better goodput (the consumer is the bottleneck;
        # 0.8 leaves room for the tail of window-update round trips).
        assert on["goodput"] >= 0.8 * off["goodput"]
    # The sim run is drain-limited: the whole burst takes ~N*PACE.
    assert table[("sim", True)]["goodput"] == pytest.approx(
        1.0 / PACE, rel=0.25)
    # The wire row is transport-limited: with no pacing and a wide
    # window, the batched binary transport clears the paced ceiling by
    # a wide margin (3x the paced-consumer goodput, on both substrates'
    # simulator-deterministic side at least).
    for kind, n in (("sim", N_SIM_WIRE), ("aio", N_AIO_WIRE)):
        wire = table[(kind, "wire")]
        assert wire["delivered"] == n
        assert wire["batches"] >= 1
    assert (table[("sim", "wire")]["goodput"]
            >= 3.0 * table[("sim", True)]["goodput"])

    benchmark(run_burst, "sim", True, n=N_SIM)
