"""A2 (micro) — substrate throughput: how much simulation per wall second.

Not a paper experiment: these wall-clock micro-benchmarks size the
simulator itself, so downstream users can budget experiments (events/s
of the kernel, end-to-end messages/s through the full dapplet stack).
Regressions here slow every other benchmark.
"""

from __future__ import annotations

import pytest

from repro import Dapplet, World
from repro.messages import Text
from repro.net import ConstantLatency
from repro.sim import Kernel, Store


class Node(Dapplet):
    kind = "node"


def test_kernel_event_throughput(benchmark):
    """Raw event scheduling + processing."""
    def run(n=20_000):
        kernel = Kernel()
        for i in range(n):
            kernel.timeout(i * 0.001)
        kernel.run()
        return kernel.now

    assert benchmark(run) > 0


def test_process_switch_throughput(benchmark):
    """Generator coroutine resume cost."""
    def run(n=5_000):
        kernel = Kernel()
        done = []

        def body():
            for _ in range(n):
                yield kernel.timeout(0.001)
            done.append(True)

        kernel.process(body())
        kernel.run()
        return done[0]

    assert benchmark(run)


def test_store_handoff_throughput(benchmark):
    def run(n=10_000):
        kernel = Kernel()
        store = Store(kernel)
        got = []

        def consumer():
            for _ in range(n):
                got.append((yield store.get()))

        kernel.process(consumer())
        for i in range(n):
            store.put(i)
        kernel.run()
        return len(got)

    assert benchmark(run) == 10_000


def test_end_to_end_message_throughput(benchmark):
    """Full stack: serialize -> transport (reliable) -> deliver."""
    def run(n=1_000):
        world = World(seed=0, latency=ConstantLatency(0.01))
        a = world.dapplet(Node, "caltech.edu", "a")
        b = world.dapplet(Node, "rice.edu", "b")
        inbox = b.create_inbox(name="in")
        out = a.create_outbox()
        out.add(inbox.named_address)
        for i in range(n):
            out.send(Text(str(i)))
        world.run()
        return len(inbox.queued())

    assert benchmark(run) == 1_000
