"""E10 — latency heterogeneity (paper §2.2).

"One process in a calendar application may be in Australia while two
other processes are in the same building in Pasadena."

Scenario: the same 6-member scheduling session under three deployments
— all in one building (LAN), spread across the US (mixed), and with one
member in Sydney (one-far). Metric: time-to-agreement and the share of
it attributable to the farthest member.

Shape claims: completion time is governed by the *slowest* member (a
scatter/gather waits for the straggler): one-far costs nearly the full
Sydney round trip per phase even though 5 of 6 members are close; the
traditional sequential algorithm pays the far member once per contact
too, but its *total* inflates by every member's latency.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro.apps.calendar import (
    CalendarDapplet,
    MeetingDirector,
    SecretaryDapplet,
    load_calendar,
    schedule_meeting,
)
from repro.net import GeoLatency
from repro.world import World

DEPLOYMENTS = {
    "all-lan": ["caltech.edu"] * 6,
    "mixed-us": ["caltech.edu", "caltech.edu", "rice.edu", "rice.edu",
                 "utk.edu", "mit.edu"],
    "one-far": ["caltech.edu"] * 5 + ["sydney.edu.au"],
}


def run_deployment(name: str, algorithm: str = "session", seed: int = 41):
    hosts = DEPLOYMENTS[name]
    world = World(seed=seed, latency=GeoLatency())
    members = []
    for i, host in enumerate(hosts):
        d = world.dapplet(CalendarDapplet, host, f"m{i}")
        load_calendar(d.state, [i % 2])
        members.append(f"m{i}")
    world.dapplet(SecretaryDapplet, "caltech.edu", "sec")
    director = world.dapplet(MeetingDirector, "caltech.edu", "director")
    box = []

    def driver():
        out = yield from schedule_meeting(director, "sec", members,
                                          horizon=8, algorithm=algorithm)
        box.append(out)

    world.run(until=world.process(driver()))
    world.run()
    return box[0]


@pytest.fixture(scope="module")
def results():
    table = {}
    for name in DEPLOYMENTS:
        table[(name, "session")] = run_deployment(name, "session")
        table[(name, "traditional")] = run_deployment(name, "traditional")
    return table


def test_e10_table_and_shape(results, benchmark):
    rows = []
    for name in DEPLOYMENTS:
        s = results[(name, "session")]
        t = results[(name, "traditional")]
        rows.append([name, f"{s.elapsed:.3f}", f"{t.elapsed:.3f}",
                     f"{t.elapsed / s.elapsed:.2f}x", s.day])
    print_table("E10: scheduling time vs latency heterogeneity (6 members)",
                ["deployment", "session (s)", "traditional (s)",
                 "ratio", "day"], rows)

    session = {n: results[(n, "session")].elapsed for n in DEPLOYMENTS}
    # Shape: completion time ordered by worst-member distance.
    assert session["all-lan"] < session["mixed-us"] < session["one-far"]
    # Shape: one far member dominates — one-far costs several times the
    # all-LAN session even though 5/6 members are colocated.
    assert session["one-far"] > 3 * session["all-lan"]
    # Shape: everyone agrees on the same day regardless of deployment.
    assert len({results[(n, "session")].day for n in DEPLOYMENTS}) == 1

    benchmark(run_deployment, "mixed-us")
