"""Shared helpers for the benchmark harness.

Each ``bench_eN_*.py`` module reproduces one experiment from the
DESIGN.md index: it runs the scenario on the simulator, prints the
paper-style table (run pytest with ``-s`` to see it, or check
EXPERIMENTS.md for recorded outputs), asserts the *shape* claims, and
uses the ``benchmark`` fixture to time the core operation in wall-clock
terms.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, header: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Render one experiment table to stdout."""
    widths = [max(len(str(h)), 10) for h in header]
    rows = [list(map(_fmt, row)) for row in rows]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(str(h).rjust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
