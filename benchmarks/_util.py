"""Shared helpers for the benchmark harness.

Each ``bench_eN_*.py`` module reproduces one experiment from the
DESIGN.md index: it runs the scenario on the simulator, prints the
paper-style table (run pytest with ``-s`` to see it, or check
EXPERIMENTS.md for recorded outputs), asserts the *shape* claims, and
uses the ``benchmark`` fixture to time the core operation in wall-clock
terms.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
from typing import Iterable, Sequence


def git_revision() -> str | None:
    """The short revision of the working tree, or ``None`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent)
        return out.stdout.strip() or None if out.returncode == 0 else None
    except OSError:
        return None


def write_results(request, bench_id: str, metrics: dict, *,
                  seed: int | None = None) -> "pathlib.Path | None":
    """Write ``BENCH_<bench_id>.json`` if the run passed ``--json DIR``.

    ``request`` is the pytest ``request`` fixture (used to read the
    option). Metric keys must be strings; values anything JSON encodes.
    Returns the written path, or ``None`` when ``--json`` is not given.
    """
    out_dir = request.config.getoption("--json", default=None)
    if out_dir is None:
        return None
    directory = pathlib.Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{bench_id}.json"
    path.write_text(json.dumps(
        {"id": bench_id, "seed": seed, "git_rev": git_revision(),
         "metrics": metrics},
        indent=2, sort_keys=True, default=str) + "\n")
    return path


def print_table(title: str, header: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Render one experiment table to stdout."""
    widths = [max(len(str(h)), 10) for h in header]
    rows = [list(map(_fmt, row)) for row in rows]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(str(h).rjust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
