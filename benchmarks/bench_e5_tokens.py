"""E5 — tokens and capabilities (paper §4.1).

Scenario A: N dapplets contend for one single-token mutex (the paper's
"at most one process modifies the object" example); metric: critical
sections completed per virtual second vs contention.

Scenario B: wait-for cycles of length L are constructed deliberately;
metric: time from cycle completion to the DeadlockDetected exception.

Shape claims: mutex throughput saturates (the token serializes work) so
per-dapplet throughput degrades as contention rises; detection latency
grows with cycle length (the last request closes the cycle later) but
every cycle is detected.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro import Dapplet, DeadlockDetected, World
from repro.net import ConstantLatency
from repro.services.tokens import TokenAgent, TokenCoordinator, TokenMutex


class Node(Dapplet):
    kind = "node"


CS_EACH = 10
HOLD = 0.01


def run_mutex(contenders: int, seed: int = 13):
    world = World(seed=seed, latency=ConstantLatency(0.005))
    host = world.dapplet(Node, "caltech.edu", "host")
    coordinator = TokenCoordinator(host, {"obj": 1})
    done = []

    def worker(agent):
        mutex = TokenMutex(agent, "obj")
        for _ in range(CS_EACH):
            yield mutex.acquire()
            yield world.kernel.timeout(HOLD)
            mutex.release()
        done.append(world.now)

    for i in range(contenders):
        d = world.dapplet(Node, f"s{i}.edu", f"d{i}")
        world.process(worker(TokenAgent(d, coordinator.pointer)))
    world.run()
    coordinator.check_conservation()
    total_cs = contenders * CS_EACH
    elapsed = max(done)
    return {"throughput": total_cs / elapsed, "elapsed": elapsed,
            "per_dapplet": CS_EACH / elapsed}


def run_deadlock(cycle_len: int, seed: int = 14):
    """d_i grabs colour c_i then requests c_{i+1 mod L}: a guaranteed
    L-cycle. Returns virtual time from last request to detection."""
    world = World(seed=seed, latency=ConstantLatency(0.005))
    host = world.dapplet(Node, "caltech.edu", "host")
    colors = {f"c{i}": 1 for i in range(cycle_len)}
    coordinator = TokenCoordinator(host, colors)
    agents = [TokenAgent(world.dapplet(Node, f"s{i}.edu", f"d{i}"),
                         coordinator.pointer) for i in range(cycle_len)]
    detected = []
    last_request_at = []

    def member(i):
        yield agents[i].request({f"c{i}": 1})
        yield world.kernel.timeout(0.5)  # everyone holds before anyone asks
        yield world.kernel.timeout(0.01 * i)  # stagger the closing requests
        if i == cycle_len - 1:
            last_request_at.append(world.now)
        try:
            yield agents[i].request({f"c{(i + 1) % cycle_len}": 1})
        except DeadlockDetected as exc:
            detected.append((world.now, exc.cycle))

    for i in range(cycle_len):
        world.process(member(i))
    world.run(until=10.0)
    assert detected, f"no deadlock detected for cycle of {cycle_len}"
    assert coordinator.deadlocks >= 1
    return {"latency": detected[0][0] - last_request_at[0],
            "cycle": detected[0][1]}


@pytest.fixture(scope="module")
def results():
    contention = (1, 2, 4, 8)
    mutex = {n: run_mutex(n) for n in contention}
    cycles = (2, 3, 5, 8)
    deadlock = {n: run_deadlock(n) for n in cycles}
    return contention, mutex, cycles, deadlock


def test_e5_mutex_contention(results, benchmark):
    contention, mutex, _, _ = results
    rows = [[n, f"{mutex[n]['throughput']:.1f}",
             f"{mutex[n]['per_dapplet']:.1f}",
             f"{mutex[n]['elapsed']:.3f}"] for n in contention]
    print_table("E5a: token mutex under contention "
                f"({CS_EACH} critical sections each, hold {HOLD}s)",
                ["dapplets", "total CS/s", "CS/s per dapplet",
                 "elapsed (s)"], rows)
    # Shape: per-dapplet throughput degrades with contention...
    per = [mutex[n]["per_dapplet"] for n in contention]
    assert per == sorted(per, reverse=True)
    # ...and total throughput saturates (bounded by 1/HOLD).
    assert mutex[8]["throughput"] <= 1.05 / HOLD

    benchmark(run_mutex, 4)


def test_e5_deadlock_detection(results, benchmark):
    _, _, cycles, deadlock = results
    rows = [[n, f"{deadlock[n]['latency']*1000:.1f}",
             len(deadlock[n]["cycle"])] for n in cycles]
    print_table("E5b: deadlock detection vs cycle length",
                ["cycle len", "detect (ms)", "cycle reported"], rows)
    for n in cycles:
        assert deadlock[n]["latency"] < 1.0  # well before any timeout

    benchmark(run_deadlock, 4)
