"""E4 — the ordering layer over UDP (paper §3.2) under faults (§2.2).

Scenario: a 200-message stream caltech -> rice under increasing
datagram loss, raw datagrams vs the reliable-FIFO layer. Metrics:
delivered count, FIFO integrity, mean delivery latency, retransmits.

Shape claims: the raw baseline loses messages in proportion to the drop
rate and breaks FIFO under jitter; the layer delivers everything in
order at every loss level, paying latency that grows with loss
(retransmission timeouts) — graceful degradation, never corruption.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro import Dapplet, World
from repro.messages import Text
from repro.net import ConstantLatency, FaultPlan


class Node(Dapplet):
    kind = "node"


N = 200


def run_stream(drop: float, reliable: bool, seed: int = 9):
    world = World(seed=seed, latency=ConstantLatency(0.02),
                  faults=FaultPlan(drop_prob=drop, duplicate_prob=0.05,
                                   reorder_jitter=0.05),
                  endpoint_options={"reliable": reliable,
                                    **({"rto_initial": 0.1,
                                        "max_retries": 60}
                                       if reliable else {})})
    src = world.dapplet(Node, "caltech.edu", "src")
    dst = world.dapplet(Node, "rice.edu", "dst")
    arrivals: list[tuple[float, int]] = []
    inbox = dst.create_inbox(name="in")
    inbox.delivery_hooks.append(
        lambda m: (arrivals.append((world.now, int(m.text))), m)[1])
    outbox = src.create_outbox()
    outbox.add(inbox.named_address)
    send_times = {}
    for i in range(N):
        send_times[i] = world.now
        outbox.send(Text(str(i)))
    world.run()
    seq = [s for _, s in arrivals]
    latencies = [t - send_times[s] for t, s in arrivals]
    return {
        "delivered": len(set(seq)),
        "fifo": seq == sorted(set(seq)),
        "mean_latency": (sum(latencies) / len(latencies)) if latencies else 0,
        "retransmits": src.endpoint.stats.data_retransmitted,
    }


@pytest.fixture(scope="module")
def results():
    drops = (0.0, 0.1, 0.3, 0.5)
    table = {}
    for drop in drops:
        table[(drop, "raw")] = run_stream(drop, reliable=False)
        table[(drop, "reliable")] = run_stream(drop, reliable=True)
    return drops, table


def test_e4_table_and_shape(results, benchmark):
    drops, table = results
    rows = []
    for drop in drops:
        raw = table[(drop, "raw")]
        rel = table[(drop, "reliable")]
        rows.append([f"{drop:.0%}", raw["delivered"], raw["fifo"],
                     rel["delivered"], rel["fifo"],
                     f"{rel['mean_latency']*1000:.1f}",
                     rel["retransmits"]])
    print_table("E4: raw datagrams vs the ordering layer (200 msgs)",
                ["drop", "raw recv", "raw fifo", "rel recv", "rel fifo",
                 "rel lat (ms)", "retransmits"], rows)

    for drop in drops:
        rel = table[(drop, "reliable")]
        assert rel["delivered"] == N and rel["fifo"]
    # Shape: raw loses roughly the drop fraction.
    assert table[(0.3, "raw")]["delivered"] < 0.85 * N
    assert table[(0.5, "raw")]["delivered"] < table[(0.1, "raw")]["delivered"]
    # Shape: reliable latency grows with loss; retransmits too.
    lat = [table[(d, "reliable")]["mean_latency"] for d in drops]
    assert lat[-1] > lat[0]
    rtx = [table[(d, "reliable")]["retransmits"] for d in drops]
    assert rtx == sorted(rtx) and rtx[-1] > 0

    benchmark(run_stream, 0.3, True)
