"""E4 — the ordering layer over UDP (paper §3.2) under faults (§2.2).

Scenario: a 200-message stream caltech -> rice under increasing
datagram loss, raw datagrams vs the reliable-FIFO layer — the latter in
both recovery modes: pure cumulative ACKs (the seed protocol) and the
default SACK + fast-retransmit + delayed-ack protocol. Metrics:
delivered count, FIFO integrity, mean delivery latency, retransmits.

Shape claims: the raw baseline (the UNRELIABLE delivery class since the
per-outbox class refactor) loses wire arrivals in proportion to the
drop rate, and under jitter its freshness filter stale-drops reordered
arrivals rather than presenting them out of order — the application
sees an ordered subsequence, never corruption, but pays for disorder in
dropped messages. The reliable layer delivers everything in order at
every loss level, paying latency that grows with loss. Ablation claim:
at every lossy level SACK retransmits less and delivers sooner than
cumulative-only, because holes are fast-retransmitted after duplicate
ACKs instead of stalling a full RTO and the already-buffered tail stays
off the wire.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table, write_results
from repro import Dapplet, World
from repro.messages import Text
from repro.net import RELIABLE, UNRELIABLE, ConstantLatency, FaultPlan


class Node(Dapplet):
    kind = "node"


N = 200


def run_stream(drop: float, reliable: bool, seed: int = 9, *,
               sack: bool = True, tracer=None):
    options = {"delivery": RELIABLE if reliable else UNRELIABLE}
    if reliable:
        options.update(rto_initial=0.1, max_retries=60, sack=sack,
                       ack_delay=0.01 if sack else 0.0)
    world = World(seed=seed, latency=ConstantLatency(0.02),
                  faults=FaultPlan(drop_prob=drop, duplicate_prob=0.05,
                                   reorder_jitter=0.05),
                  endpoint_options=options, tracer=tracer)
    src = world.dapplet(Node, "caltech.edu", "src")
    dst = world.dapplet(Node, "rice.edu", "dst")
    arrivals: list[tuple[float, int]] = []
    inbox = dst.create_inbox(name="in")
    inbox.delivery_hooks.append(
        lambda m: (arrivals.append((world.now, int(m.text))), m)[1])
    outbox = src.create_outbox()
    outbox.add(inbox.named_address)
    send_times = {}
    for i in range(N):
        send_times[i] = world.now
        outbox.send(Text(str(i)))
    world.run()
    seq = [s for _, s in arrivals]
    latencies = [t - send_times[s] for t, s in arrivals]
    result = {
        "delivered": len(set(seq)),
        # Raw mode: what actually crossed the wire — app deliveries plus
        # the reordered arrivals the UNRELIABLE freshness filter dropped
        # as stale. Loss proportionality shows here, not in `delivered`.
        "arrived": len(set(seq)) + dst.endpoint.stats.stale_dropped,
        "fifo": seq == sorted(set(seq)),
        "mean_latency": (sum(latencies) / len(latencies)) if latencies else 0,
        "retransmits": src.endpoint.stats.data_retransmitted,
        "fast_retransmits": src.endpoint.stats.fast_retransmits,
        "acks": dst.endpoint.stats.acks_sent,
    }
    if tracer is not None:
        summary = tracer.summary()
        result["obs"] = {"counters": summary["counters"],
                         "ep_rtt": summary["histograms"].get("ep.rtt")}
    return result


@pytest.fixture(scope="module")
def results():
    # Table runs carry a metrics-only tracer (protocol counters and the
    # RTT histogram land in BENCH_e4_reliability.json); the timed run in
    # test_e4_table_and_shape does NOT — it times the uninstrumented
    # fast path.
    from repro import Tracer
    drops = (0.0, 0.1, 0.3, 0.5)
    table = {}
    for drop in drops:
        for mode, kwargs in (("raw", {"reliable": False}),
                             ("cum", {"reliable": True, "sack": False}),
                             ("sack", {"reliable": True, "sack": True})):
            table[(drop, mode)] = run_stream(
                drop, tracer=Tracer(metrics_only=True), **kwargs)
    return drops, table


def test_e4_table_and_shape(results, benchmark, request):
    drops, table = results
    write_results(request, "e4_reliability",
                  {f"{drop}/{mode}": metrics
                   for (drop, mode), metrics in table.items()}, seed=9)
    rows = []
    for drop in drops:
        raw = table[(drop, "raw")]
        cum = table[(drop, "cum")]
        sel = table[(drop, "sack")]
        rows.append([f"{drop:.0%}", raw["arrived"], raw["delivered"],
                     f"{cum['mean_latency']*1000:.1f}", cum["retransmits"],
                     f"{sel['mean_latency']*1000:.1f}", sel["retransmits"],
                     sel["fast_retransmits"]])
    print_table("E4: raw vs ordering layer, cumulative vs SACK (200 msgs)",
                ["drop", "raw wire", "raw recv", "cum lat (ms)", "cum rtx",
                 "sack lat (ms)", "sack rtx", "fast rtx"], rows)

    for drop in drops:
        for mode in ("cum", "sack"):
            rel = table[(drop, mode)]
            assert rel["delivered"] == N and rel["fifo"]
    # Shape: raw wire arrivals shrink with the drop fraction, and the
    # UNRELIABLE freshness filter keeps app deliveries an ordered
    # subsequence of them (stale reordered arrivals dropped, not
    # presented out of order).
    assert table[(0.3, "raw")]["arrived"] < 0.85 * N
    assert table[(0.5, "raw")]["arrived"] < table[(0.1, "raw")]["arrived"]
    for drop in drops:
        raw = table[(drop, "raw")]
        assert raw["fifo"]
        assert raw["delivered"] <= raw["arrived"]
    # Shape: reliable latency grows with loss; retransmits too.
    for mode in ("cum", "sack"):
        lat = [table[(d, mode)]["mean_latency"] for d in drops]
        assert lat[-1] > lat[0]
        rtx = [table[(d, mode)]["retransmits"] for d in drops]
        assert rtx == sorted(rtx) and rtx[-1] > 0
    # Ablation: at every lossy level SACK both retransmits less and
    # delivers sooner than cumulative-only.
    for drop in drops[1:]:
        cum = table[(drop, "cum")]
        sel = table[(drop, "sack")]
        assert sel["retransmits"] < cum["retransmits"]
        assert sel["mean_latency"] < cum["mean_latency"]
        assert sel["fast_retransmits"] > 0
    # Delayed acks also thin the reverse path (fewer ACK datagrams than
    # the one-per-DATA cumulative baseline).
    assert table[(0.1, "sack")]["acks"] < table[(0.1, "cum")]["acks"]

    benchmark(run_stream, 0.3, True)
