"""E12 — termination detection (paper §2.2's servlet list).

Scenario: a ring of workers processes a diffusing computation (work
items spawn more work with shrinking hop counts); Safra's token
detector announces termination. Metric: the delay between actual
quiescence (the last application message processed) and detection, vs
ring size.

Shape claims: detection is sound (never early) and its delay grows
linearly with ring size — the token must circle up to twice after
quiescence.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro import Dapplet, World
from repro.messages import Blob
from repro.net import ConstantLatency
from repro.services.termination import TerminationDetector

LINK = 0.02


class Worker(Dapplet):
    kind = "worker"

    def wire(self, ring, index, next_inbox, initial_work):
        self.detector = TerminationDetector(self, "g", ring, index)
        self.work_inbox = self.create_inbox(name="work")
        self.out = self.create_outbox()
        self.out.add(next_inbox)
        self.detector.watch_outbox(self.out)
        self.detector.watch_inbox(self.work_inbox)
        self.initial_work = initial_work
        self.last_processed = 0.0

    def main(self):
        def run():
            for _ in range(self.initial_work):
                self.out.send(Blob({"hops": 4}))
            self.detector.set_passive()
            while True:
                msg = yield self.work_inbox.receive()
                self.last_processed = self.world.now
                if msg.data["hops"] > 0:
                    self.out.send(Blob({"hops": msg.data["hops"] - 1}))
                self.detector.set_passive()

        return run()


def run_ring(n: int, seed: int = 47):
    world = World(seed=seed, latency=ConstantLatency(LINK))
    workers = [world.dapplet(Worker, f"s{i}.edu", f"w{i}")
               for i in range(n)]
    ring = [w.address for w in workers]
    for i, w in enumerate(workers):
        w.wire(ring, i, workers[(i + 1) % n].address.inbox("work"),
               initial_work=2 if i == 0 else 0)
    for w in workers:
        w.start()
    box = {}

    def watcher():
        t = yield workers[0].detector.detected
        box["detected_at"] = t

    world.run(until=world.process(watcher()))
    quiescent_at = max(w.last_processed for w in workers)
    return {
        "quiescent_at": quiescent_at,
        "detected_at": box["detected_at"],
        "delay": box["detected_at"] - quiescent_at,
        "rounds": workers[0].detector.token_rounds,
    }


@pytest.fixture(scope="module")
def results():
    sizes = (3, 6, 12, 24)
    return sizes, {n: run_ring(n) for n in sizes}


def test_e12_table_and_shape(results, benchmark):
    sizes, table = results
    rows = [[n, f"{table[n]['quiescent_at']:.3f}",
             f"{table[n]['detected_at']:.3f}",
             f"{table[n]['delay']:.3f}", table[n]["rounds"]]
            for n in sizes]
    print_table("E12: Safra termination detection vs ring size",
                ["ring", "quiescent (s)", "detected (s)", "delay (s)",
                 "token rounds"], rows)

    for n in sizes:
        # Soundness: never announced before quiescence.
        assert table[n]["detected_at"] >= table[n]["quiescent_at"]
        # Liveness: at most ~2 extra token rounds after quiescence.
        assert table[n]["delay"] < 2.5 * n * LINK + 0.2
    # Shape: delay grows with ring size.
    delays = [table[n]["delay"] for n in sizes]
    assert delays[-1] > delays[0]

    benchmark(run_ring, 6)
