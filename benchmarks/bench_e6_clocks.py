"""E6 — clocks, checkpointing, snapshots (paper §4.2).

Scenario A: message traffic with logical clocks always on (they are
part of the layer); metric: wire-size overhead of timestamping and the
snapshot-criterion violation count (must be zero).

Scenario B: checkpoint-at-T across a chatty ring; metric: spread of
checkpoint instants, channel messages captured.

Scenario C: Chandy-Lamport marker snapshots over sessions of growing
size; metric: markers sent and virtual completion time vs member count.

Shape claims: criterion violations are zero always; marker count equals
the channel count (linear in ring size) and completion time grows with
ring circumference.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro import Dapplet, Initiator, World
from repro.messages import Blob, Text
from repro.net import ConstantLatency, UniformLatency
from repro.services.clocks import (
    ChandyLamportSnapshot,
    CheckpointService,
    incoming_channels,
)
from repro.session import SessionSpec


class Node(Dapplet):
    kind = "node"


def run_criterion_check(n_messages: int = 100, seed: int = 21):
    """Chatty pair; returns (violations, stamped bytes, raw bytes)."""
    world = World(seed=seed, latency=UniformLatency(0.01, 0.2))
    a = world.dapplet(Node, "caltech.edu", "a")
    b = world.dapplet(Node, "rice.edu", "b")
    ia, ib = a.create_inbox(name="in"), b.create_inbox(name="in")
    oa, ob = a.create_outbox(), b.create_outbox()
    oa.add(ib.address)
    ob.add(ia.address)
    violations = []
    for d, inbox in ((a, ia), (b, ib)):
        def make_hook(d=d):
            def hook(m):
                ts = d.clock.last_received_ts
                if ts is not None and d.clock.time <= ts:
                    violations.append((d.name, ts))
                return m
            return hook
        inbox.delivery_hooks.append(make_hook())

    def chat(out, inbox, n):
        for i in range(n):
            out.send(Text(f"m{i}"))
            yield inbox.receive()

    world.process(chat(oa, ia, n_messages))
    world.process(chat(ob, ib, n_messages))
    world.run()
    from repro.messages import dumps
    raw = len(dumps(Text("m0")))
    stamped = len(dumps(a.clock._on_send(Text("m0"))))
    return {"violations": len(violations), "raw_bytes": raw,
            "stamped_bytes": stamped}


def run_checkpoint(n: int = 4, T: int = 20, seed: int = 22):
    world = World(seed=seed, latency=UniformLatency(0.01, 0.3))
    nodes = [world.dapplet(Node, f"s{i}.edu", f"d{i}") for i in range(n)]
    inboxes = [d.create_inbox(name="in") for d in nodes]
    outboxes = []
    for i, d in enumerate(nodes):
        ob = d.create_outbox()
        ob.add(inboxes[(i + 1) % n].address)
        outboxes.append(ob)
    services = [CheckpointService(d, at_time=T) for d in nodes]

    def churn(i):
        for k in range(30):
            outboxes[i].send(Blob({"k": k}))
            yield inboxes[i].receive()

    for i in range(n):
        world.process(churn(i))
    world.run()
    assert all(s.taken is not None for s in services)
    instants = [s.taken.sim_time for s in services]
    channel_msgs = sum(len(s.taken.channel_messages) for s in services)
    return {"spread": max(instants) - min(instants),
            "channel_msgs": channel_msgs}


def run_marker_snapshot(n: int, seed: int = 23):
    world = World(seed=seed, latency=ConstantLatency(0.05))
    members = [f"m{i}" for i in range(n)]
    dapplets = {m: world.dapplet(Node, f"s{i}.edu", m)
                for i, m in enumerate(members)}
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec = SessionSpec("snap-bench")
    for m in members:
        spec.add_member(m, inboxes=("in",))
    for i, m in enumerate(members):
        spec.bind(m, "out", members[(i + 1) % n], "in")
    incoming = {m: incoming_channels(spec, m) for m in members}
    snaps = {}
    box = {}

    class _Holder:
        pass

    def on_start(d, ctx):
        snaps[ctx.member] = ChandyLamportSnapshot(
            ctx, incoming=incoming[ctx.member], state_fn=lambda: {})

    for m in members:
        dapplets[m].on_session_start = (
            lambda ctx, d=dapplets[m]: on_start(d, ctx))

    def director():
        session = yield from initiator.establish(spec)
        before = world.network.stats.sent
        t0 = world.now
        snaps[members[0]].initiate("g0")
        for m in members:
            while snaps[m].done is None:
                yield world.kernel.timeout(0.01)
            yield snaps[m].done
        box["elapsed"] = world.now - t0
        box["datagrams"] = world.network.stats.sent - before
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    return box


@pytest.fixture(scope="module")
def results():
    criterion = run_criterion_check()
    checkpoint = run_checkpoint()
    sizes = (3, 6, 12)
    marker = {n: run_marker_snapshot(n) for n in sizes}
    return criterion, checkpoint, sizes, marker


def test_e6_criterion_and_overhead(results, benchmark):
    criterion, checkpoint, _, _ = results
    overhead = criterion["stamped_bytes"] / criterion["raw_bytes"]
    print_table("E6a: snapshot criterion + stamping overhead",
                ["violations", "raw bytes", "stamped bytes", "overhead"],
                [[criterion["violations"], criterion["raw_bytes"],
                  criterion["stamped_bytes"], f"{overhead:.2f}x"]])
    print_table("E6b: checkpoint at clock T=20 on a 4-ring",
                ["cut spread (s)", "channel msgs captured"],
                [[f"{checkpoint['spread']:.3f}",
                  checkpoint["channel_msgs"]]])
    assert criterion["violations"] == 0
    assert overhead < 3.0  # a constant envelope, not a blow-up

    benchmark(run_criterion_check, 40)


def test_e6_marker_snapshot_scaling(results, benchmark):
    _, _, sizes, marker = results
    rows = [[n, f"{marker[n]['elapsed']:.3f}", marker[n]["datagrams"]]
            for n in sizes]
    print_table("E6c: Chandy-Lamport snapshot vs ring size",
                ["members", "elapsed (s)", "datagrams"], rows)
    # Shape: completion time grows with ring circumference (markers must
    # travel the ring), datagrams grow linearly.
    elapsed = [marker[n]["elapsed"] for n in sizes]
    assert elapsed == sorted(elapsed)
    assert marker[12]["datagrams"] > 2.5 * marker[3]["datagrams"]

    benchmark(run_marker_snapshot, 4)
