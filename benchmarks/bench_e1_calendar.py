"""E1 — Figure 1 / Example One: the calendar session vs the tradition.

Scenario: committee members' calendar dapplets at Caltech, Rice and
Tennessee, a coordinating secretary, the director's initiator. Metrics:
virtual time-to-agreement and datagram count, for the paper's session
approach vs the "call each member in turn" baseline, across committee
sizes.

Shape claims (paper §1 motivation): the session approach wins on
latency; the gap widens with committee size (sequential negotiation
costs one WAN round trip per member, the session costs one per phase).
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro.apps.calendar import (
    CalendarDapplet,
    MeetingDirector,
    SecretaryDapplet,
    load_calendar,
    ring_schedule,
    schedule_meeting,
)
from repro.net import GeoLatency
from repro.world import World

SITES = ["caltech.edu", "rice.edu", "utk.edu"]


def build(n_members: int, seed: int = 7):
    world = World(seed=seed, latency=GeoLatency())
    members = []
    for i in range(n_members):
        name = f"member{i}"
        d = world.dapplet(CalendarDapplet, SITES[i % len(SITES)], name)
        load_calendar(d.state, [i % 3])  # staggered busy days
        members.append(name)
    world.dapplet(SecretaryDapplet, "caltech.edu", "secretary")
    director = world.dapplet(MeetingDirector, "caltech.edu", "director")
    return world, director, members


def run_schedule(n_members: int, algorithm: str):
    world, director, members = build(n_members)
    box = []

    def driver():
        if algorithm == "ring":
            out = yield from ring_schedule(director, members, horizon=10)
        else:
            out = yield from schedule_meeting(
                director, "secretary", members, horizon=10,
                algorithm=algorithm)
        box.append(out)

    world.run(until=world.process(driver()))
    world.run()
    return box[0]


ALGORITHMS = ("session", "traditional", "negotiated", "ring")


@pytest.fixture(scope="module")
def results():
    sizes = (3, 6, 9)
    table = {}
    for n in sizes:
        for algorithm in ALGORITHMS:
            table[(n, algorithm)] = run_schedule(n, algorithm)
    return sizes, table


def test_e1_table_and_shape(results, benchmark):
    sizes, table = results
    rows = []
    for n in sizes:
        s = table[(n, "session")]
        t = table[(n, "traditional")]
        g = table[(n, "negotiated")]
        r = table[(n, "ring")]
        rows.append([n, f"{s.elapsed:.3f}", f"{t.elapsed:.3f}",
                     f"{g.elapsed:.3f}", f"{r.elapsed:.3f}",
                     f"{t.elapsed / s.elapsed:.2f}x",
                     s.datagrams, r.datagrams])
    print_table(
        "E1: time-to-agreement by algorithm (virtual seconds)",
        ["members", "session", "traditional", "negotiated", "ring",
         "speedup", "dgrams(star)", "dgrams(ring)"], rows)

    # Shape: all algorithms agree on the chosen day.
    for n in sizes:
        days = {table[(n, a)].day for a in ALGORITHMS}
        assert len(days) == 1 and days != {-1}
    # Shape: the decentralized ring saves messages vs the star.
    for n in sizes:
        assert table[(n, "ring")].datagrams < \
            table[(n, "session")].datagrams
    # Shape: the session approach wins at every size...
    for n in sizes:
        assert table[(n, "session")].elapsed < table[(n, "traditional")].elapsed
    # ...and the advantage grows with committee size.
    speedups = [table[(n, "traditional")].elapsed
                / table[(n, "session")].elapsed for n in sizes]
    assert speedups[-1] > speedups[0]

    benchmark(run_schedule, 6, "session")
