"""E14 — discovery: resolver latency with caching, staleness under churn.

Two scenarios against a 3-replica replicated directory:

* **Resolution latency** (simulator): one client resolves the same name
  back-to-back, with the resolver cache enabled vs disabled
  (``cache_ttl=0``). Cached, almost every resolve is a local cache hit
  costing zero network round-trips, so resolves-per-virtual-second is
  orders of magnitude higher; uncached, every resolve pays a full
  client->replica round trip. The cached figure is seed-deterministic
  and guarded by ``check_regression.py``.

* **Staleness under churn** (simulator *and* real UDP): register a
  fresh dapplet, kill it silently, and poll its name until resolution
  raises :class:`~repro.errors.LeaseExpired`. The window between the
  kill and the last successful resolve is the client-observed staleness,
  which must stay under the config's analytic bound
  (:meth:`~repro.discovery.LeaseConfig.staleness_bound`: TTL + gossip
  lag + one sweep + cache lifetime) on both substrates.

Run with ``--json DIR`` to emit ``BENCH_e14_discovery.json``.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table, write_results
from repro import AsyncioSubstrate, LeaseConfig, LeaseExpired, World
from repro.dapplet.dapplet import Dapplet
from repro.net import ConstantLatency
from repro.obs import Tracer

SEED = 14
N_RESOLVES = 300
CHURN_CYCLES_SIM = 5
CHURN_CYCLES_AIO = 2

SIM_CFG = LeaseConfig(ttl=1.0, renew_interval=0.25, sweep_interval=0.2,
                      gossip_interval=0.3, cache_ttl=0.3,
                      request_timeout=0.5, tombstone_ttl=10.0)
AIO_CFG = LeaseConfig(ttl=0.6, renew_interval=0.15, sweep_interval=0.1,
                      gossip_interval=0.15, cache_ttl=0.1,
                      request_timeout=0.4, tombstone_ttl=10.0)


class Target(Dapplet):
    kind = "bench-target"


def run_resolve_burst(cached: bool, *, tracer: "Tracer | None" = None) -> dict:
    """N back-to-back resolves of one name on the simulator."""
    cfg = SIM_CFG if cached else LeaseConfig(
        **{**_as_kwargs(SIM_CFG), "cache_ttl": 0.0})
    world = World(seed=SEED, latency=ConstantLatency(0.01))
    if tracer is not None:
        world.attach_tracer(tracer)
    world.host_directory(3, config=cfg)
    world.dapplet(Target, "target.edu", "target")
    prober = world.dapplet(Target, "probe.edu", "probe")
    resolver = world.resolver_for(prober)
    done = world.kernel.event()
    out = {}

    def director():
        yield world.kernel.timeout(1.0)  # leases granted and gossiped
        start = world.kernel.now
        for _ in range(N_RESOLVES):
            yield from resolver.resolve("target")
        elapsed = world.kernel.now - start
        stats = resolver.stats.snapshot()
        out.update(stats)
        out["hit_rate"] = stats["hits"] / N_RESOLVES
        # On cache hits no virtual time passes, so elapsed is the pure
        # network cost of the misses; never zero (the first resolve
        # always misses and pays a round trip).
        out["elapsed"] = elapsed
        out["resolves_per_s"] = N_RESOLVES / elapsed
        done.succeed(None)

    world.process(director())
    world.run(until=done)
    for dapplet in list(world.dapplets()):
        dapplet.stop()
    world.run()
    return out


def run_churn(kind: str, *, cycles: int,
              wall_timeout: float | None = None) -> dict:
    """Register/kill cycles; measures the client-observed staleness."""
    if kind == "sim":
        cfg, step = SIM_CFG, 0.1
        world = World(seed=SEED, latency=ConstantLatency(0.01))
    else:
        cfg, step = AIO_CFG, 0.05
        world = World(substrate=AsyncioSubstrate(seed=SEED))
    try:
        replicas = world.host_directory(3, config=cfg)
        prober = world.dapplet(Target, "probe.edu", "probe")
        resolver = world.resolver_for(prober)
        windows = []
        done = world.kernel.event()

        def director():
            for i in range(cycles):
                name = f"churn{i}"
                worker = world.dapplet(Target, f"c{i}.edu", name)
                yield worker.lease_agent.registered
                while True:  # resolvable through this client?
                    try:
                        yield from resolver.resolve(name)
                        break
                    except LeaseExpired:
                        yield world.kernel.timeout(step)
                kill_t = world.kernel.now
                worker.stop()
                last_success = kill_t
                while True:
                    yield world.kernel.timeout(step)
                    try:
                        yield from resolver.resolve(name)
                        last_success = world.kernel.now
                    except LeaseExpired:
                        break
                windows.append(last_success - kill_t)
            done.succeed(None)

        world.process(director())
        if wall_timeout is not None:
            world.run(until=done, wall_timeout=wall_timeout)
        else:
            world.run(until=done)
        for dapplet in list(world.dapplets()):
            dapplet.stop()
        if wall_timeout is None:
            world.run()
        bound = cfg.staleness_bound(len(replicas))
        return {
            "cycles": cycles,
            "bound": bound,
            "max_staleness": max(windows),
            "mean_staleness": sum(windows) / len(windows),
            "bound_margin": bound - max(windows),
        }
    finally:
        world.close()


def _as_kwargs(cfg: LeaseConfig) -> dict:
    return {f: getattr(cfg, f) for f in (
        "ttl", "renew_interval", "sweep_interval", "gossip_interval",
        "tombstone_ttl", "cache_ttl", "request_timeout")}


@pytest.fixture(scope="module")
def results():
    return {
        "sim/cached": run_resolve_burst(True),
        "sim/uncached": run_resolve_burst(False),
        "sim/churn": run_churn("sim", cycles=CHURN_CYCLES_SIM),
        "aio/churn": run_churn("aio", cycles=CHURN_CYCLES_AIO,
                               wall_timeout=60),
    }


def test_e14_table_and_shape(results, benchmark, request):
    # The resolver-latency histogram must land in the obs metrics.
    tracer = Tracer(categories=["dir"], metrics_only=True)
    run_resolve_burst(True, tracer=tracer)
    summary = tracer.summary()
    assert "dir.resolve" in summary["histograms"]
    assert summary["counters"].get("dir.cache_hit", 0) > 0

    write_results(request, "e14_discovery", results, seed=SEED)
    cached, uncached = results["sim/cached"], results["sim/uncached"]
    rows = [
        ["cached", N_RESOLVES, cached["hits"], cached["misses"],
         f"{cached['hit_rate']:.2f}", f"{cached['resolves_per_s']:.0f}"],
        ["uncached", N_RESOLVES, uncached["hits"], uncached["misses"],
         f"{uncached['hit_rate']:.2f}",
         f"{uncached['resolves_per_s']:.0f}"],
    ]
    print_table("E14a: back-to-back resolves, cache on vs off (sim)",
                ["mode", "resolves", "hits", "misses", "hit rate",
                 "resolves/s"], rows)
    rows = [[kind, r["cycles"], f"{r['max_staleness']:.2f}",
             f"{r['mean_staleness']:.2f}", f"{r['bound']:.2f}"]
            for kind, r in (("sim", results["sim/churn"]),
                            ("aio", results["aio/churn"]))]
    print_table("E14b: staleness window under register/kill churn",
                ["substrate", "cycles", "max stale (s)", "mean stale (s)",
                 "bound (s)"], rows)

    # Caching pays: most resolves are hits and the burst completes far
    # faster than paying a round trip per resolve.
    assert cached["hit_rate"] > 0.8
    assert uncached["hits"] == 0
    assert cached["resolves_per_s"] > 5 * uncached["resolves_per_s"]
    # The staleness window is bounded on both substrates.
    for kind in ("sim/churn", "aio/churn"):
        churn = results[kind]
        assert 0 <= churn["max_staleness"] <= churn["bound"], kind
        assert churn["bound_margin"] >= 0

    benchmark(run_resolve_burst, True)
