"""E15 — wire codec: struct-packed binary frames vs the JSON reference.

Scenario: a fixed set of representative frames — small and large
singleton DATA, a full 32-payload batched DATA, ACKs bare and fully
optioned (ets + SACK + rwnd), and PROBE — each encoded and decoded
by the binary codec (:func:`repro.net.wire.encode_frame`) and by the
retained JSON reference codec the package shipped before
(:func:`repro.net.wire.encode_frame_json`).

Metrics per frame class: bytes on the wire for both codecs and their
ratio (JSON/binary — higher means the binary frame is smaller), plus
wall-clock encode+decode round trips per second for each codec.

Shape claims: every binary frame is strictly smaller than its JSON
form, every class round-trips exactly, and the binary codec is faster
than the JSON one on the same machine (a relative claim, so it holds on
any hardware). ``benchmarks/check_regression.py`` guards the size
ratios — they are pure functions of the codec, bit-deterministic — and
fails CI if a codec change gives back the compactness this experiment
records. The ops/s numbers are recorded for inspection but never gate.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._util import print_table, write_results
from repro.net import NodeAddress
from repro.net.datagram import Datagram
from repro.net.wire import (KIND_ACK, KIND_DATA, KIND_PROBE, decode_frame,
                            decode_frame_json, encode_frame,
                            encode_frame_json)

A = NodeAddress("caltech.edu", 2000)
B = NodeAddress("sydney.edu.au", 2107)

#: Representative frames, one per class the transport actually emits.
FRAMES = {
    "data_small": Datagram(
        A, B, {"kind": KIND_DATA, "to": 3, "ch": "cal/updates",
               "seq": 1234, "ts": 17.640625}, "x" * 48),
    "data_large": Datagram(
        A, B, {"kind": KIND_DATA, "to": "updates", "ch": "cal/updates",
               "seq": 98765, "ts": 1712.5}, "y" * 4096),
    "data_batch32": Datagram(
        A, B, {"kind": KIND_DATA, "to": 7, "ch": "cal/updates",
               "seq": 4096, "ts": 99.375, "parts": list(range(7, 39))},
        "", parts_payloads=tuple(f"{i:03d}" + "z" * 97 for i in range(32))),
    "data_piggyback": Datagram(
        A, B, {"kind": KIND_DATA, "to": 0, "ch": "c0", "seq": 10,
               "ts": 5.25,
               "pack": [{"ch": "c1", "cum": 41, "ets": 5.125,
                         "rwnd": 16384},
                        {"ch": "c2", "cum": 7, "ets": None,
                         "sack": [[9, 12], [14, 14]]}]}, "w" * 100),
    "ack_bare": Datagram(
        A, B, {"kind": KIND_ACK, "ch": "cal/updates", "cum": 1233,
               "ets": 17.640625}, ""),
    "ack_full": Datagram(
        A, B, {"kind": KIND_ACK, "ch": "cal/updates", "cum": 1233,
               "ets": 17.640625, "sack": [[1290, 1293], [1295, 1295],
                                          [1299, 1304]],
               "rwnd": 123456}, ""),
    "probe": Datagram(A, B, {"kind": KIND_PROBE, "ch": "cal/updates"}, ""),
}

ROUNDS = 2000


def _time_codec(encode, decode, frames, rounds=ROUNDS):
    """Wall-clock encode+decode round trips per second over the set."""
    start = time.perf_counter()
    for _ in range(rounds):
        for d in frames:
            decode(encode(d))
    elapsed = time.perf_counter() - start
    return rounds * len(frames) / elapsed


@pytest.fixture(scope="module")
def results():
    table = {}
    frames = list(FRAMES.values())
    for name, d in FRAMES.items():
        binary = encode_frame(d)
        legacy = encode_frame_json(d)
        assert decode_frame(binary) == d
        assert decode_frame_json(legacy) == d
        table[name] = {
            "binary_bytes": len(binary),
            "json_bytes": len(legacy),
            "size_ratio": len(legacy) / len(binary),
        }
    table["codec"] = {
        "binary_roundtrips_per_s": _time_codec(encode_frame, decode_frame,
                                               frames),
        "json_roundtrips_per_s": _time_codec(encode_frame_json,
                                             decode_frame_json, frames),
    }
    return table


def test_e15_table_and_shape(results, benchmark, request):
    table = results
    write_results(request, "e15_wire", table, seed=None)

    rows = [[name, m["binary_bytes"], m["json_bytes"],
             f"{m['size_ratio']:.2f}x"]
            for name, m in table.items() if name != "codec"]
    print_table("E15: binary wire frames vs the JSON reference codec",
                ["frame", "binary B", "json B", "json/binary"], rows)
    codec = table["codec"]
    print(f"  round trips/s: binary {codec['binary_roundtrips_per_s']:,.0f}"
          f"  json {codec['json_roundtrips_per_s']:,.0f}")

    # Binary strictly smaller, for every frame class.
    for name, m in table.items():
        if name == "codec":
            continue
        assert m["binary_bytes"] < m["json_bytes"], name
        assert m["size_ratio"] > 1.0
    # The per-datagram header cost (what every ACK pays) shrinks >1.5x.
    assert table["ack_bare"]["size_ratio"] > 1.5
    # And faster than the JSON reference on the same machine.
    assert (codec["binary_roundtrips_per_s"]
            > codec["json_roundtrips_per_s"])

    benchmark(_time_codec, encode_frame, decode_frame,
              list(FRAMES.values()), 50)
