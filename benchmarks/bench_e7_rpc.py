"""E7 — global pointers and RPC (paper §3.2).

Scenario: a counter object exported behind an inbox; a client invokes
it asynchronously (fire-and-forget messages) and synchronously
(pairwise asynchronous RPCs) across three distance classes: same
building (LAN), cross-country, intercontinental.

Shape claims: a sync call costs one round trip, so its latency tracks
the WAN distance; async invocations cost one-way and pipeline, so
async throughput is far higher and nearly distance-independent for a
fixed window.
"""

from __future__ import annotations

import pytest

from benchmarks._util import print_table
from repro import Dapplet, World
from repro.net import GeoLatency
from repro.rpc import RemoteProxy, export

DISTANCES = {
    "lan": ("caltech.edu", "cs.caltech.edu"),
    "continental": ("caltech.edu", "mit.edu"),
    "intercontinental": ("caltech.edu", "sydney.edu.au"),
}

N_CALLS = 30


class Node(Dapplet):
    kind = "node"


class Counter:
    def __init__(self):
        self.value = 0

    def add(self, n):
        self.value += n
        return self.value


def run_rpc(distance: str, seed: int = 27):
    server_host, client_host = DISTANCES[distance]
    world = World(seed=seed, latency=GeoLatency(jitter_median=0.0005))
    server = world.dapplet(Node, server_host, "server")
    client = world.dapplet(Node, client_host, "client")
    counter = Counter()
    remote = export(server, counter, name="counter")
    proxy = RemoteProxy(client, remote.pointer)
    box = {}

    def sync_calls():
        t0 = world.now
        for i in range(N_CALLS):
            yield proxy.call("add", 1)
        box["sync_total"] = world.now - t0

    world.run(until=world.process(sync_calls()))
    assert counter.value == N_CALLS

    t0 = world.now
    for i in range(N_CALLS):
        proxy.invoke("add", 1)
    world.run()
    box["async_total"] = world.now - t0
    assert counter.value == 2 * N_CALLS
    return {
        "sync_latency": box["sync_total"] / N_CALLS,
        "sync_rate": N_CALLS / box["sync_total"],
        "async_rate": N_CALLS / box["async_total"],
    }


@pytest.fixture(scope="module")
def results():
    return {d: run_rpc(d) for d in DISTANCES}


def test_e7_table_and_shape(results, benchmark):
    rows = [[d, f"{r['sync_latency']*1000:.2f}", f"{r['sync_rate']:.1f}",
             f"{r['async_rate']:.1f}",
             f"{r['async_rate']/r['sync_rate']:.1f}x"]
            for d, r in results.items()]
    print_table(f"E7: sync vs async RPC ({N_CALLS} calls)",
                ["distance", "sync lat (ms)", "sync calls/s",
                 "async calls/s", "async speedup"], rows)

    lat = [results[d]["sync_latency"] for d in
           ("lan", "continental", "intercontinental")]
    # Shape: sync latency ordered by distance; intercontinental is a
    # real round trip (> 100 ms).
    assert lat[0] < lat[1] < lat[2]
    assert lat[2] > 0.1
    # Shape: async pipelines — much higher rate at every distance, and
    # the advantage grows with distance.
    gains = [results[d]["async_rate"] / results[d]["sync_rate"]
             for d in ("lan", "continental", "intercontinental")]
    assert all(g > 2 for g in gains)
    assert gains[-1] > gains[0]

    benchmark(run_rpc, "continental")
