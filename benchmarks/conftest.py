"""Benchmark-harness options.

``--json DIR`` makes each experiment write a machine-readable
``BENCH_<id>.json`` result file (metrics + seed + git revision) into
``DIR``, so runs can be archived and diffed across commits; see
:func:`benchmarks._util.write_results`.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--json", action="store", default=None, metavar="DIR",
        help="directory to write BENCH_<id>.json result files into")
